"""detlint command line: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 = clean (modulo baseline and inline suppressions),
1 = non-baselined findings, 2 = usage/configuration error.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t
from pathlib import Path

from ..errors import ConfigError
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import lint_paths
from .report import render_json, render_text
from .rules import rule_catalog

__all__ = ["build_parser", "main", "add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach detlint flags (shared by ``repro lint`` and this module)."""
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to analyze "
                             "(default: src/repro, falling back to the "
                             "installed repro package)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="also write the report to FILE (useful for "
                             "CI artifacts; format follows --json)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: ./{DEFAULT_BASELINE_NAME} when "
                             "present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print baselined findings (text mode)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="detlint: AST-based determinism & sim-correctness "
                    "analyzer for the repro codebase")
    add_lint_arguments(parser)
    return parser


def _default_paths() -> list[str]:
    if Path("src/repro").is_dir():
        return ["src/repro"]
    return [str(Path(__file__).resolve().parent.parent)]


def _render_rule_catalog() -> str:
    lines = []
    for r in rule_catalog():
        lines.append(f"{r['id']} [{r['severity']}] "
                     f"(scopes: {r['scopes']}) — {r['summary']}")
        doc = r["doc"].splitlines()
        if doc:
            lines.append(f"    {doc[0].strip()}")
    return "\n".join(lines) + "\n"


def run_lint(args: argparse.Namespace, out: _t.TextIO) -> int:
    """Execute one lint run from parsed arguments."""
    if args.list_rules:
        out.write(_render_rule_catalog())
        return 0

    paths = args.paths or _default_paths()
    for p in paths:
        if not Path(p).exists():
            out.write(f"error: no such path: {p}\n")
            return 2

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline \
            and Path(DEFAULT_BASELINE_NAME).is_file():
        baseline_path = DEFAULT_BASELINE_NAME
    baseline = None
    if baseline_path and not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(baseline_path)

    report = lint_paths(paths, baseline=baseline)

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        Baseline.from_findings(report.findings).dump(target)
        out.write(f"detlint: wrote {len(report.findings)} finding(s) "
                  f"to {target}\n")
        return 0

    text = (render_json(report, paths=[str(p) for p in paths])
            if args.json
            else render_text(report,
                             verbose_baseline=args.show_baselined))
    out.write(text)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
    return 0 if report.clean else 1


def main(argv: _t.Sequence[str] | None = None,
         out: _t.TextIO | None = None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    try:
        return run_lint(args, out)
    except ConfigError as exc:
        out.write(f"error: {exc}\n")
        return 2
