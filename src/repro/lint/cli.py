"""detlint command line: ``python -m repro.lint`` / ``repro lint``.

Exit codes: 0 = clean (modulo baseline and inline suppressions),
1 = non-baselined findings (or a stale baseline under
``--check-baseline``), 2 = usage/configuration error.

Reports go to ``out`` (stdout); diagnostics — bad paths, unknown
rules, baseline errors — go to ``err`` (stderr), so ``--json`` output
is exactly one parseable document with nothing interleaved.
"""

from __future__ import annotations

import argparse
import sys
import typing as _t
from pathlib import Path

from ..errors import ConfigError
from .baseline import DEFAULT_BASELINE_NAME, Baseline
from .engine import lint_paths
from .fixes import fix_tree
from .report import render_json, render_text
from .rules import RULES, rule_catalog

__all__ = ["build_parser", "main", "add_lint_arguments", "run_lint"]


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach detlint flags (shared by ``repro lint`` and this module)."""
    parser.add_argument("paths", nargs="*", metavar="PATH",
                        help="files/directories to analyze "
                             "(default: src/repro, falling back to the "
                             "installed repro package)")
    parser.add_argument("--json", action="store_true",
                        help="emit the machine-readable JSON report "
                             "(byte-stable: sorted findings, trailing "
                             "newline, diagnostics on stderr)")
    parser.add_argument("--output", metavar="FILE", default=None,
                        help="also write the report to FILE (useful for "
                             "CI artifacts; format follows --json)")
    parser.add_argument("--baseline", metavar="FILE", default=None,
                        help="baseline file of grandfathered findings "
                             f"(default: ./{DEFAULT_BASELINE_NAME} when "
                             "present)")
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore any baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="write the current findings to the baseline "
                             "file and exit 0")
    parser.add_argument("--prune-baseline", action="store_true",
                        help="rewrite the baseline dropping fingerprints "
                             "that no longer fire, then exit 0")
    parser.add_argument("--check-baseline", action="store_true",
                        help="exit 1 if the baseline contains stale "
                             "entries (fingerprints that no longer fire)")
    parser.add_argument("--show-baselined", action="store_true",
                        help="also print baselined findings (text mode)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    parser.add_argument("--explain", metavar="RULE", default=None,
                        help="print the full catalog entry for RULE "
                             "and exit")
    parser.add_argument("--fix", action="store_true",
                        help="apply mechanical fixes for fixable rules "
                             "(exact byte-span patches), then re-lint")
    parser.add_argument("--diff", action="store_true",
                        help="preview the --fix patches as unified "
                             "diffs without writing anything")
    parser.add_argument("--suppress", metavar="RULES", default=None,
                        help="with --fix/--diff: insert inline "
                             "suppression comments (with a TODO "
                             "justification stub) for these "
                             "comma-separated rule ids instead of "
                             "rewriting")
    parser.add_argument("--profile", choices=("sim", "host", "neutral"),
                        default=None,
                        help="override the path-derived scope for every "
                             "file ('host' relaxes sim-only rules — the "
                             "CI profile for tests/ and benchmarks/)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="analyze files on N threads (output is "
                             "identical to a serial run)")
    parser.add_argument("--stats", action="store_true",
                        help="append per-rule cost accounting to the "
                             "text report")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="detlint: AST-based determinism, concurrency & "
                    "sim-correctness analyzer for the repro codebase")
    add_lint_arguments(parser)
    return parser


def _default_paths() -> list[str]:
    if Path("src/repro").is_dir():
        return ["src/repro"]
    return [str(Path(__file__).resolve().parent.parent)]


def _render_rule_catalog() -> str:
    lines = []
    for r in rule_catalog():
        flags = f"scopes: {r['scopes']}"
        if r["fixable"]:
            flags += ", fixable"
        lines.append(f"{r['id']} [{r['severity']}] "
                     f"({flags}) — {r['summary']}")
        doc = r["doc"].splitlines()
        if doc:
            lines.append(f"    {doc[0].strip()}")
    return "\n".join(lines) + "\n"


def _render_explain(rule_id: str) -> str:
    entry = next(r for r in rule_catalog() if r["id"] == rule_id)
    lines = [f"{entry['id']} [{entry['severity']}] — {entry['summary']}",
             f"scopes: {entry['scopes']}"
             + ("   (fixable: `repro lint --fix`)"
                if entry["fixable"] else ""),
             ""]
    lines.extend(entry["doc"].splitlines())
    return "\n".join(lines).rstrip() + "\n"


def _resolve_baseline_path(args: argparse.Namespace) -> str | None:
    if args.baseline is not None:
        return args.baseline
    if not args.no_baseline and Path(DEFAULT_BASELINE_NAME).is_file():
        return DEFAULT_BASELINE_NAME
    return None


def run_lint(args: argparse.Namespace, out: _t.TextIO,
             err: _t.TextIO | None = None) -> int:
    """Execute one lint run from parsed arguments."""
    err = err if err is not None else out
    if args.list_rules:
        out.write(_render_rule_catalog())
        return 0
    if args.explain is not None:
        if args.explain not in RULES:
            err.write(f"error: unknown rule {args.explain!r} "
                      f"(see --list-rules)\n")
            return 2
        out.write(_render_explain(args.explain))
        return 0
    if args.suppress and not (args.fix or args.diff):
        err.write("error: --suppress requires --fix or --diff\n")
        return 2
    if args.jobs < 1:
        err.write("error: --jobs must be >= 1\n")
        return 2

    paths = args.paths or _default_paths()
    for p in paths:
        if not Path(p).exists():
            err.write(f"error: no such path: {p}\n")
            return 2

    baseline_path = _resolve_baseline_path(args)
    baseline = None
    if baseline_path and not args.no_baseline and not args.write_baseline:
        baseline = Baseline.load(baseline_path)

    if args.prune_baseline or args.check_baseline:
        if baseline is None:
            err.write("error: no baseline file to "
                      f"{'prune' if args.prune_baseline else 'check'} "
                      f"(looked for ./{DEFAULT_BASELINE_NAME})\n")
            return 2
        report = lint_paths(paths, profile=args.profile, jobs=args.jobs)
        fired = {f.fingerprint for f in report.findings}
        stale = baseline.stale_entries(fired)
        if args.prune_baseline:
            baseline.pruned(fired).dump(baseline_path)
            out.write(f"detlint: pruned {len(stale)} stale entr"
                      f"{'y' if len(stale) == 1 else 'ies'} from "
                      f"{baseline_path} ({len(baseline) - len(stale)} "
                      "kept)\n")
            return 0
        if stale:
            for e in stale:
                out.write(f"stale baseline entry: {e.get('rule', '?')} "
                          f"{e.get('path', '?')} "
                          f"[{e['fingerprint']}]\n")
            out.write(f"detlint: {len(stale)} stale baseline entr"
                      f"{'y' if len(stale) == 1 else 'ies'}; run "
                      "`repro lint --prune-baseline`\n")
            return 1
        out.write(f"detlint: baseline is tight "
                  f"({len(baseline)} entr"
                  f"{'y' if len(baseline) == 1 else 'ies'}, 0 stale)\n")
        return 0

    if args.fix or args.diff:
        suppress = tuple(s.strip() for s in (args.suppress or "").split(",")
                         if s.strip())
        for rid in suppress:
            if rid not in RULES:
                err.write(f"error: unknown rule {rid!r} in --suppress\n")
                return 2
        result = fix_tree(paths, suppress=suppress, baseline=baseline,
                          profile=args.profile, write=not args.diff)
        if args.diff:
            for norm in sorted(result.diffs):
                out.write(result.diffs[norm])
            out.write(f"detlint: {result.patches} fix(es) in "
                      f"{result.changed_files} file(s) (preview; "
                      "nothing written)\n")
            return 0
        out.write(f"detlint: applied {result.patches} fix(es) in "
                  f"{result.changed_files} file(s)\n")
        # Fall through: re-lint the fixed tree so the exit code and
        # report reflect what is left after the mechanical pass.

    report = lint_paths(paths, baseline=baseline, profile=args.profile,
                        jobs=args.jobs)

    if args.write_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        Baseline.from_findings(report.findings).dump(target)
        out.write(f"detlint: wrote {len(report.findings)} finding(s) "
                  f"to {target}\n")
        return 0

    text = (render_json(report, paths=[str(p) for p in paths])
            if args.json
            else render_text(report,
                             verbose_baseline=args.show_baselined,
                             stats=args.stats))
    out.write(text)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
    return 0 if report.clean else 1


def main(argv: _t.Sequence[str] | None = None,
         out: _t.TextIO | None = None,
         err: _t.TextIO | None = None) -> int:
    out = out or sys.stdout
    err = err if err is not None else (sys.stderr if out is sys.stdout
                                       else out)
    args = build_parser().parse_args(argv)
    try:
        return run_lint(args, out, err)
    except ConfigError as exc:
        err.write(f"error: {exc}\n")
        return 2
