"""``python -m repro.lint`` — see :mod:`repro.lint.cli`."""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
