"""detlint engine: file walking, scope map, suppressions, fingerprints.

One :class:`ModuleUnderLint` is built per analyzed file (source text,
parsed AST, parent links, scope classification); every registered rule
(:mod:`repro.lint.rules`) gets a chance to emit :class:`Finding`
objects against it.  The engine then applies inline suppressions
(``# detlint: disable=DET003`` on the offending line, or
``# detlint: disable-next=DET003`` on the line above) and assigns each
surviving finding a line-number-independent fingerprint so a checked-in
baseline (:mod:`repro.lint.baseline`) keeps grandfathered findings from
failing CI without pinning them to exact positions.

Scope map
---------
The determinism rules only make sense inside the simulation's
deterministic core.  Each module under ``repro`` is classified as:

* ``sim`` — code whose behaviour must be a pure function of the seed:
  ``sim/``, ``net/``, ``mpi/``, ``noise/``, ``faults/``, ``ktau/``,
  ``obs/``, ``kernel/``, ``apps/``, ``core/``, ``microbench/``,
  ``analysis/``.
* ``host`` — code that legitimately touches wall clocks, process pools
  and the filesystem: ``parallel/``, ``harness/``, ``lint/``,
  ``cli.py``, ``__main__.py``.
* ``neutral`` — glue with no simulation or host behaviour of its own:
  ``errors.py`` and package ``__init__`` re-export shims.

Rules declare which scopes they apply to; DET/SIM rules default to
``sim`` only, so host-scoped wall-clock use (e.g. sweep timings in
``parallel/executor.py``) is exempt by construction, not by
suppression.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import re
import time
import typing as _t
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

__all__ = ["Finding", "ModuleUnderLint", "LintReport", "module_scope",
           "normalize_path", "lint_source", "lint_paths",
           "SIM_PACKAGES", "HOST_PACKAGES", "HOT_PATH_MODULES",
           "PARSE_ERROR_RULE"]

#: Top-level ``repro`` sub-packages whose behaviour must be
#: seed-deterministic (wall clocks, entropy, and unordered iteration
#: are hazards here).
SIM_PACKAGES = frozenset({
    "sim", "net", "mpi", "noise", "faults", "ktau", "obs",
    "kernel", "apps", "core", "microbench", "analysis",
})

#: Sub-packages that legitimately touch host facilities (wall clock,
#: process pools, filesystem); DET rules do not apply.
HOST_PACKAGES = frozenset({"parallel", "harness", "lint", "serve"})

#: Top-level single modules that are host-scoped.
_HOST_MODULES = frozenset({"cli.py", "__main__.py"})

#: Top-level single modules with no sim/host behaviour of their own.
_NEUTRAL_MODULES = frozenset({"errors.py", "__init__.py"})

#: Modules on the event-dispatch hot path; classes here must declare
#: ``__slots__`` (rule PERF001).
HOT_PATH_MODULES = frozenset({
    "repro/sim/core.py", "repro/sim/events.py", "repro/sim/process.py",
    "repro/sim/resources.py", "repro/net/message.py",
})

#: Pseudo-rule id attached to findings for unparseable files.
PARSE_ERROR_RULE = "E999"

_SUPPRESS_RE = re.compile(
    r"#\s*detlint:\s*(disable|disable-next)\s*=\s*"
    r"(all|[A-Z]+\d+(?:\s*,\s*[A-Z]+\d+)*)")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    severity: str
    path: str  # normalized repro-relative posix path
    line: int
    col: int
    message: str
    line_text: str = ""
    fingerprint: str = ""
    baselined: bool = False
    #: AST node the fixer layer rewrites (None for unfixable findings);
    #: excluded from equality, hashing, and the JSON report.
    fix_node: _t.Any = dataclasses.field(
        default=None, compare=False, repr=False)

    def format(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule} {self.message}")

    def as_dict(self) -> dict[str, _t.Any]:
        return {"rule": self.rule, "severity": self.severity,
                "path": self.path, "line": self.line, "col": self.col,
                "message": self.message, "fingerprint": self.fingerprint,
                "baselined": self.baselined}


class ModuleUnderLint:
    """Everything a rule needs to know about one analyzed file."""

    def __init__(self, source: str, path: str, scope: str) -> None:
        self.source = source
        self.path = path  # normalized (repro/...) posix path
        self.scope = scope
        self.lines = source.splitlines()
        self.tree = ast.parse(source)  # caller handles SyntaxError
        #: child AST node -> parent AST node (identity-keyed).
        self.parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent
        #: local alias -> fully qualified module/object name, built from
        #: the module's import statements (``import numpy as np`` maps
        #: ``np -> numpy``; ``from time import perf_counter`` maps
        #: ``perf_counter -> time.perf_counter``).
        self.aliases: dict[str, str] = {}
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for a in node.names:
                    self.aliases[a.asname or a.name.split(".")[0]] = a.name
            elif isinstance(node, ast.ImportFrom) and node.module \
                    and node.level == 0:
                for a in node.names:
                    if a.name != "*":
                        self.aliases[a.asname or a.name] = \
                            f"{node.module}.{a.name}"

    @property
    def is_hot_path(self) -> bool:
        return self.path in HOT_PATH_MODULES

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted name of ``node`` with import aliases expanded.

        ``Name(np)`` -> ``"numpy"``; ``Attribute(time.perf_counter)``
        -> ``"time.perf_counter"``; anything else -> ``None``.
        """
        if isinstance(node, ast.Name):
            return self.aliases.get(node.id, node.id)
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            return None if base is None else f"{base}.{node.attr}"
        return None

    def enclosing_function(self, node: ast.AST) -> ast.AST | None:
        cur: ast.AST | None = node
        while cur is not None:
            cur = self.parents.get(cur)
            if isinstance(cur, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return cur
        return None

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


@dataclasses.dataclass
class LintReport:
    """Outcome of one :func:`lint_paths` run."""

    findings: list[Finding] = dataclasses.field(default_factory=list)
    baselined: list[Finding] = dataclasses.field(default_factory=list)
    suppressed: int = 0
    files: int = 0
    #: rule id -> cumulative seconds spent in its ``check`` pass
    #: (``--stats``; kept out of the JSON report so it stays
    #: byte-stable across runs).
    rule_costs: dict[str, float] = dataclasses.field(default_factory=dict)
    #: normalized path -> analyzed module (the fixer layer needs the
    #: source/AST that produced each finding).
    modules: dict[str, "ModuleUnderLint"] = dataclasses.field(
        default_factory=dict)
    #: normalized path -> on-disk path, for writing fixes back.
    file_of: dict[str, Path] = dataclasses.field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            out[f.rule] = out.get(f.rule, 0) + 1
        return dict(sorted(out.items()))


def module_scope(rel_parts: _t.Sequence[str]) -> str:
    """Scope ("sim" | "host" | "neutral") for a repro-relative path.

    ``rel_parts`` are the path components *after* the ``repro`` package
    root, e.g. ``("sim", "core.py")`` or ``("cli.py",)``.
    """
    if not rel_parts:
        return "neutral"
    if len(rel_parts) == 1:
        name = rel_parts[0]
        if name in _HOST_MODULES:
            return "host"
        if name in _NEUTRAL_MODULES:
            return "neutral"
        return "sim"
    pkg = rel_parts[0]
    if pkg in HOST_PACKAGES:
        return "host"
    if pkg in SIM_PACKAGES:
        return "sim"
    return "sim"


def normalize_path(path: str | Path) -> tuple[str, tuple[str, ...]]:
    """``(display_path, rel_parts)`` for any on-disk or virtual path.

    The display path is rooted at the ``repro`` package
    (``repro/sim/core.py``) whenever a ``repro`` component is present,
    so fingerprints are stable across checkouts and install layouts.
    ``tests/`` and ``benchmarks/`` trees root the same way (the CI
    lint gate analyzes them under the relaxed host profile).
    """
    parts = Path(path).parts
    for i in range(len(parts) - 1, -1, -1):
        if parts[i] in ("repro", "tests", "benchmarks"):
            rel = tuple(parts[i + 1:])
            return "/".join((parts[i],) + rel), rel
    return Path(path).name, (Path(path).name,)


def _suppressions(source: str) -> dict[int, frozenset[str] | None]:
    """line number -> suppressed rule ids (``None`` = all rules)."""
    out: dict[int, frozenset[str] | None] = {}

    def merge(lineno: int, rules: frozenset[str] | None) -> None:
        if lineno in out and out[lineno] is None:
            return
        if rules is None:
            out[lineno] = None
        else:
            prev = out.get(lineno) or frozenset()
            out[lineno] = prev | rules

    for i, line in enumerate(source.splitlines(), start=1):
        m = _SUPPRESS_RE.search(line)
        if not m:
            continue
        kind, spec = m.group(1), m.group(2)
        rules = (None if spec == "all"
                 else frozenset(r.strip() for r in spec.split(",")))
        merge(i + 1 if kind == "disable-next" else i, rules)
    return out


def _fingerprint(rule: str, path: str, text: str, occurrence: int) -> str:
    payload = f"{rule}\x1f{path}\x1f{text.strip()}\x1f{occurrence}"
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


def _assign_fingerprints(findings: list[Finding]) -> list[Finding]:
    """Fill in content-based fingerprints (line-number independent).

    Identical (rule, path, line text) triples are disambiguated by
    occurrence index in line order, so moving a finding does not change
    its fingerprint but duplicating it does add a new one.
    """
    seen: dict[tuple[str, str, str], int] = {}
    out = []
    for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule)):
        key = (f.rule, f.path, f.line_text.strip())
        occ = seen.get(key, 0)
        seen[key] = occ + 1
        out.append(dataclasses.replace(
            f, fingerprint=_fingerprint(f.rule, f.path, f.line_text, occ)))
    return out


def _run_rules(mod: ModuleUnderLint, rules: _t.Sequence[_t.Any],
               costs: dict[str, float] | None = None) -> list[Finding]:
    """Rule pass over one module, with optional per-rule timing."""
    raw: list[Finding] = []
    for rule in rules:
        if not (mod.scope in rule.scopes or "*" in rule.scopes):
            continue
        t0 = time.perf_counter()
        raw.extend(rule.check(mod))
        if costs is not None:
            costs[rule.id] = (costs.get(rule.id, 0.0)
                              + time.perf_counter() - t0)
    return raw


def _apply_suppressions(source: str, raw: list[Finding],
                        ) -> tuple[list[Finding], int]:
    suppress = _suppressions(source)
    kept: list[Finding] = []
    n_suppressed = 0
    for f in raw:
        sup = suppress.get(f.line, frozenset())
        if sup is None or f.rule in (sup or frozenset()):
            n_suppressed += 1
        else:
            kept.append(f)
    return kept, n_suppressed


def lint_source(source: str, path: str | Path = "fixture.py", *,
                scope: str | None = None,
                rules: _t.Iterable[_t.Any] | None = None,
                ) -> tuple[list[Finding], int]:
    """Analyze one source string; returns ``(findings, n_suppressed)``.

    ``scope`` overrides the path-derived scope — fixtures in tests pass
    ``scope="sim"`` explicitly.  Findings carry fingerprints; inline
    suppressions have already been applied (their count is returned).

    The cross-module rules see an index containing only this one
    module, so interprocedural findings (DET007) need
    :func:`lint_paths` over the whole tree — this is exactly the
    single-function blindness the taint engine exists to fix.
    """
    from .callgraph import build_index
    from .rules import active_rules

    norm, rel = normalize_path(path)
    if scope is None:
        scope = module_scope(rel)
    try:
        mod = ModuleUnderLint(source, norm, scope)
    except SyntaxError as exc:
        finding = Finding(PARSE_ERROR_RULE, "error", norm,
                          exc.lineno or 1, (exc.offset or 1) - 1,
                          f"syntax error: {exc.msg}")
        return _assign_fingerprints([finding]), 0

    rule_list = list(rules) if rules is not None else active_rules()
    index = build_index([mod])
    for rule in rule_list:
        rule.index = index
    raw = _run_rules(mod, rule_list)
    kept, n_suppressed = _apply_suppressions(source, raw)
    return _assign_fingerprints(kept), n_suppressed


def iter_python_files(paths: _t.Iterable[str | Path]) -> list[Path]:
    """Sorted .py files under ``paths`` (files pass through verbatim)."""
    out: set[Path] = set()
    for p in paths:
        p = Path(p)
        if p.is_dir():
            out.update(f for f in p.rglob("*.py")
                       if "__pycache__" not in f.parts)
        else:
            out.add(p)
    return sorted(out)


def lint_paths(paths: _t.Iterable[str | Path], *,
               rules: _t.Iterable[_t.Any] | None = None,
               baseline: _t.Any = None,
               profile: str | None = None,
               jobs: int = 1) -> LintReport:
    """Analyze every .py file under ``paths`` against the rule set.

    Two-pass: an index pass parses every file and builds the
    cross-module symbol table (:mod:`repro.lint.callgraph`), then the
    rule pass runs every applicable rule per file with the shared
    index injected — this is what lets DET007 see a host-clock helper
    defined in one module and called from another.

    ``baseline`` is a :class:`repro.lint.baseline.Baseline` (or
    ``None``); baselined findings are reported separately and do not
    make the run dirty.  ``profile`` overrides the path-derived scope
    for every file (``"host"`` relaxes sim-only rules for
    tests/benchmarks).  ``jobs > 1`` parses and analyzes files on a
    thread pool; results are merged in sorted-file order, so output is
    identical to a serial run.
    """
    from .callgraph import build_index
    from .rules import active_rules

    rule_list = list(rules) if rules is not None else active_rules()
    files = iter_python_files(paths)
    report = LintReport()

    _Loaded = tuple  # (file, source, norm, mod-or-None, err-or-None)

    def _load(file: Path) -> _Loaded:
        source = file.read_text(encoding="utf-8")
        norm, rel = normalize_path(file)
        file_scope = profile if profile is not None else module_scope(rel)
        try:
            return file, source, norm, \
                ModuleUnderLint(source, norm, file_scope), None
        except SyntaxError as exc:
            err = Finding(PARSE_ERROR_RULE, "error", norm,
                          exc.lineno or 1, (exc.offset or 1) - 1,
                          f"syntax error: {exc.msg}")
            return file, source, norm, None, err

    def _analyze(entry: _Loaded) -> tuple[list[Finding], int,
                                          dict[str, float]]:
        _file, source, _norm, mod, err = entry
        if mod is None:
            return _assign_fingerprints([err]), 0, {}
        costs: dict[str, float] = {}
        raw = _run_rules(mod, rule_list, costs)
        kept, n_sup = _apply_suppressions(source, raw)
        return _assign_fingerprints(kept), n_sup, costs

    if jobs > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            loaded = list(pool.map(_load, files))
    else:
        loaded = [_load(f) for f in files]

    index = build_index(m for _f, _s, _n, m, _e in loaded
                        if m is not None)
    for rule in rule_list:
        rule.index = index

    if jobs > 1:
        with ThreadPoolExecutor(max_workers=jobs) as pool:
            analyzed = list(pool.map(_analyze, loaded))
    else:
        analyzed = [_analyze(e) for e in loaded]

    for entry, (findings, n_sup, costs) in zip(loaded, analyzed):
        file, _source, norm, mod, _err = entry
        report.files += 1
        report.suppressed += n_sup
        if mod is not None:
            report.modules[norm] = mod
            report.file_of[norm] = Path(file)
        for rid, cost in costs.items():
            report.rule_costs[rid] = report.rule_costs.get(rid, 0.0) + cost
        for f in findings:
            if baseline is not None and baseline.contains(f):
                report.baselined.append(
                    dataclasses.replace(f, baselined=True))
            else:
                report.findings.append(f)
    report.findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    report.baselined.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return report
