"""detlint reporters: human text and machine-readable JSON.

The JSON schema is versioned and covered by
``tests/test_lint.py::test_json_schema_stability`` — additions bump
``SCHEMA_VERSION``; existing keys never change meaning.
"""

from __future__ import annotations

import json
import typing as _t

from .engine import LintReport
from .rules import rule_catalog

__all__ = ["SCHEMA_VERSION", "render_text", "render_json"]

#: v2: findings are globally sorted (active and baselined merged into
#: one (path, line, col, rule) order) with a guaranteed trailing
#: newline, and rule entries carry ``fixable``.  Run-varying data
#: (per-rule timings) is deliberately excluded so two runs over the
#: same tree produce byte-identical documents.
SCHEMA_VERSION = 2


def render_text(report: LintReport, *, verbose_baseline: bool = False,
                stats: bool = False) -> str:
    """One line per finding plus a summary tail (empty-safe)."""
    lines = [f.format() for f in report.findings]
    if verbose_baseline:
        lines.extend(f.format() + "  [baselined]" for f in report.baselined)
    by_rule = report.by_rule()
    tail = (f"detlint: {len(report.findings)} finding(s) in "
            f"{report.files} file(s)")
    if by_rule:
        tail += " (" + ", ".join(f"{r}: {n}" for r, n in by_rule.items()) \
            + ")"
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed inline")
    if extras:
        tail += " [" + ", ".join(extras) + "]"
    lines.append(tail)
    if stats and report.rule_costs:
        lines.append("per-rule cost:")
        total = sum(report.rule_costs.values())
        for rid, cost in sorted(report.rule_costs.items(),
                                key=lambda kv: (-kv[1], kv[0])):
            share = 100 * cost / total if total else 0.0
            lines.append(f"  {rid:9s} {1000 * cost:8.1f} ms "
                         f"({share:4.1f}%)")
    return "\n".join(lines) + "\n"


def render_json(report: LintReport, *, paths: _t.Sequence[str] = ()) -> str:
    """Byte-stable machine-readable report.

    Sorted keys, globally sorted findings (active and baselined in one
    (path, line, col, rule) order), trailing newline, and no
    run-varying data — two runs over an unchanged tree are
    byte-identical, so CI artifact diffs mean something.
    """
    merged = sorted(list(report.findings) + list(report.baselined),
                    key=lambda f: (f.path, f.line, f.col, f.rule,
                                   f.baselined))
    doc = {
        "tool": "detlint",
        "schema_version": SCHEMA_VERSION,
        "paths": list(paths),
        "rules": {r["id"]: {"severity": r["severity"],
                            "summary": r["summary"],
                            "scopes": r["scopes"],
                            "fixable": r["fixable"]}
                  for r in rule_catalog()},
        "findings": [f.as_dict() for f in merged],
        "summary": {
            "files": report.files,
            "active": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed,
            "by_rule": report.by_rule(),
            "clean": report.clean,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
