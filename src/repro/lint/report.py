"""detlint reporters: human text and machine-readable JSON.

The JSON schema is versioned and covered by
``tests/test_lint.py::test_json_schema_stability`` — additions bump
``SCHEMA_VERSION``; existing keys never change meaning.
"""

from __future__ import annotations

import json
import typing as _t

from .engine import LintReport
from .rules import rule_catalog

__all__ = ["SCHEMA_VERSION", "render_text", "render_json"]

SCHEMA_VERSION = 1


def render_text(report: LintReport, *, verbose_baseline: bool = False) -> str:
    """One line per finding plus a summary tail (empty-safe)."""
    lines = [f.format() for f in report.findings]
    if verbose_baseline:
        lines.extend(f.format() + "  [baselined]" for f in report.baselined)
    by_rule = report.by_rule()
    tail = (f"detlint: {len(report.findings)} finding(s) in "
            f"{report.files} file(s)")
    if by_rule:
        tail += " (" + ", ".join(f"{r}: {n}" for r, n in by_rule.items()) \
            + ")"
    extras = []
    if report.baselined:
        extras.append(f"{len(report.baselined)} baselined")
    if report.suppressed:
        extras.append(f"{report.suppressed} suppressed inline")
    if extras:
        tail += " [" + ", ".join(extras) + "]"
    lines.append(tail)
    return "\n".join(lines) + "\n"


def render_json(report: LintReport, *, paths: _t.Sequence[str] = ()) -> str:
    """Stable machine-readable report (sorted keys, versioned schema)."""
    doc = {
        "tool": "detlint",
        "schema_version": SCHEMA_VERSION,
        "paths": list(paths),
        "rules": {r["id"]: {"severity": r["severity"],
                            "summary": r["summary"],
                            "scopes": r["scopes"]}
                  for r in rule_catalog()},
        "findings": [f.as_dict() for f in report.findings]
        + [f.as_dict() for f in report.baselined],
        "summary": {
            "files": report.files,
            "active": len(report.findings),
            "baselined": len(report.baselined),
            "suppressed": report.suppressed,
            "by_rule": report.by_rule(),
            "clean": report.clean,
        },
    }
    return json.dumps(doc, indent=2, sort_keys=True) + "\n"
