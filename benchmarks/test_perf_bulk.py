"""Perf gates for the bulk-rank collective fast path.

Printed measurements (run with ``--benchmark-only -s``), asserted as
*floors* set well below healthy values so only a real regression
trips them:

* bulk-vs-generator wall-clock speedup at 4096 ranks (must be >=10x;
  healthy is >100x);
* rank-advancement throughput of the bulk engine (rank-repetitions
  per second at 16384 ranks);
* the E17 acceptance point: a 131072-rank two-level allreduce over a
  fat-tree shape must complete in under 60 s.
"""

import time

from repro.core import Machine, MachineConfig
from repro.microbench import CollectiveBenchmark
from repro.mpi.collectives.bulk import run_bulk

import numpy as np


def _bulk_config(P, shape=None, topology="switch"):
    return MachineConfig(n_nodes=P, kernel="lightweight", network="seastar",
                         topology=topology, shape=shape, seed=31)


def test_bulk_speedup_over_generator(benchmark):
    config = _bulk_config(4096)
    bench = CollectiveBenchmark("allreduce", repetitions=2,
                                message_size=8, gap_ns=500_000)

    t0 = time.perf_counter()
    res_bulk, _tl = run_bulk(config, bench)
    bulk_s = time.perf_counter() - t0

    def generator():
        return bench.run(Machine(config))

    res_gen = benchmark.pedantic(generator, rounds=1, iterations=1)
    gen_s = benchmark.stats.stats.mean
    speedup = gen_s / max(bulk_s, 1e-9)
    print(f"\nbulk {bulk_s*1e3:.1f} ms vs generator {gen_s:.2f} s "
          f"at 4096 ranks: {speedup:,.0f}x")
    assert np.array_equal(res_bulk.times_ns, res_gen.times_ns)
    assert speedup >= 10, (
        f"bulk fast path regressed: only {speedup:.1f}x faster than the "
        "generator at 4096 ranks (healthy is >100x)")


def test_bulk_rank_advancement_floor(benchmark):
    config = _bulk_config(16384, shape="32x32x16@fat-tree",
                          topology="hier:32x32x16@fat-tree")
    bench = CollectiveBenchmark("allreduce", repetitions=20,
                                message_size=8, algorithm="two-level",
                                gap_ns=500_000)

    def run():
        return run_bulk(config, bench)

    benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.mean
    rank_reps = config.n_nodes * bench.repetitions
    rate = rank_reps / elapsed
    print(f"\nbulk advancement: {rate:,.0f} rank-repetitions/sec "
          f"({rank_reps:,} in {elapsed:.2f} s)")
    assert rate > 50_000, (
        f"bulk engine regressed: {rate:,.0f} rank-reps/sec at 16384 ranks "
        "(healthy is >150k)")


def test_extreme_scale_under_60s(benchmark):
    """The E17 acceptance point: 100k+ ranks, two-level allreduce on a
    fat-tree shape, to completion in under a minute."""
    config = _bulk_config(131072, shape="32x64x64@fat-tree",
                          topology="hier:32x64x64@fat-tree")
    bench = CollectiveBenchmark("allreduce", repetitions=6,
                                message_size=8, algorithm="two-level",
                                gap_ns=500_000)

    def run():
        return run_bulk(config, bench, tie_break="deterministic")

    res, _tl = benchmark.pedantic(run, rounds=1, iterations=1)
    elapsed = benchmark.stats.stats.mean
    print(f"\n131072-rank two-level allreduce, {bench.repetitions} reps: "
          f"{elapsed:.1f} s (mean latency {res.mean_ns/1e3:.1f} us)")
    assert res.n_nodes == 131072
    assert elapsed < 60, (
        f"extreme-scale run took {elapsed:.1f} s; the 100k-rank point "
        "must stay under a minute")
