"""Benchmark E7: Observer overhead by instrumentation level.

Regenerates the E7 table (see DESIGN.md experiment index) at the
CI-sized "small" scale and asserts its qualitative shape checks.  The
benchmark time is the full cost of reproducing the figure.  Run with
``--benchmark-only -s`` to see the rendered table.
"""

from repro.harness import run_experiment


def test_e7_observer_overhead(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("E7", "small"), rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.passed, (
        "E7 shape checks failed: " + str(report.failed_checks()))
