"""Benchmark E12: Allreduce algorithm ablation under noise.

Regenerates the E12 table (see DESIGN.md experiment index) at the
CI-sized "small" scale and asserts its qualitative shape checks.  The
benchmark time is the full cost of reproducing the figure.  Run with
``--benchmark-only -s`` to see the rendered table.
"""

from repro.harness import run_experiment


def test_e12_algorithm_ablation(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("E12", "small"), rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.passed, (
        "E12 shape checks failed: " + str(report.failed_checks()))
