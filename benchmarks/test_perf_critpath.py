"""Overhead floor for the cross-node dependency recorder.

The recorder must be cheap enough to leave on for any run someone
wants to attribute: the acceptance bar is < 15 % CPU overhead on a
32-node collective benchmark with recording enabled vs disabled.  The
assertion threshold is set above that bar (25 %) so only a real
regression — not scheduler jitter on a loaded CI box — trips it; the
measured ratio is printed for the perf trajectory.

Run with ``pytest benchmarks/test_perf_critpath.py -s``.
"""

import time

from repro.core import Machine, MachineConfig
from repro.microbench import CollectiveBenchmark

_N_NODES = 32
_REPS = 60


def _bench_once(critical_path: bool) -> float:
    machine = Machine(MachineConfig(n_nodes=_N_NODES,
                                    kernel="commodity-linux", seed=3,
                                    critical_path=critical_path))
    bench = CollectiveBenchmark("allreduce", repetitions=_REPS)
    t0 = time.perf_counter()
    bench.run(machine)
    return time.perf_counter() - t0


def test_recorder_overhead_under_bar():
    # Warm up, then alternate off/on runs so slow clock drift (thermal
    # throttling, a neighbour waking up) hits both sides equally; min
    # is the right statistic for wall-clock noise.
    _bench_once(False)
    _bench_once(True)
    offs, ons = [], []
    for _ in range(3):
        offs.append(_bench_once(False))
        ons.append(_bench_once(True))
    off, on = min(offs), min(ons)
    overhead = (on - off) / off
    print(f"\ncritical-path recorder overhead: {100 * overhead:.1f}% "
          f"(off {off:.3f}s, on {on:.3f}s, {_N_NODES} nodes x{_REPS} "
          "allreduce)")
    assert overhead < 0.25, (
        f"recorder overhead {100 * overhead:.1f}% exceeds the bar "
        "(acceptance target < 15%)")
