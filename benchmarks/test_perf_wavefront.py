"""Perf floor for the idle-wave extractor.

The wavefront extractor is post-processing: it runs over edge logs
that already exist, so its cost must stay negligible next to the
simulations that produced them.  The bar is that matching plus
extraction plus the causal replay over a 16-rank, ~3000-wait BSP log
pair completes well under a second; the assertion threshold (2 s) is
set far above the measured time (~10 ms) so only an algorithmic
regression — an accidental O(waits^2) pairing, a per-wait re-sort —
trips it, not scheduler jitter on a loaded CI box.

Run with ``pytest benchmarks/test_perf_wavefront.py -s``.
"""

import time
from dataclasses import replace

from repro.core import ExperimentConfig, run_experiment
from repro.faults import FaultPlan
from repro.obs import extract_wavefront

_NODES = 16
_ITERATIONS = 200
_WORK_NS = 200_000
_SOURCE = 2
_T0_NS = 2_000_000
_DURATION_NS = 500_000


def test_wavefront_extraction_is_fast():
    base = ExperimentConfig(
        app="bsp", nodes=_NODES, noise_pattern="quiet", seed=17,
        kernel="lightweight", record_edges=True,
        app_params=dict(work_ns=_WORK_NS, iterations=_ITERATIONS))
    quiet = run_experiment(base)
    delayed = run_experiment(replace(base, faults=FaultPlan(
        one_off=((_SOURCE, _T0_NS, _DURATION_NS),), seed=17)))
    n_waits = sum(len(ws) for ws in quiet.meta["edge_log"]["waits"].values())

    # Warm-up extraction, then time the best of three.
    extract_wavefront(quiet.meta["edge_log"], delayed.meta["edge_log"],
                      source_rank=_SOURCE, t0_ns=_T0_NS,
                      duration_ns=_DURATION_NS)
    times = []
    for _ in range(3):
        t0 = time.perf_counter()
        wave = extract_wavefront(
            quiet.meta["edge_log"], delayed.meta["edge_log"],
            source_rank=_SOURCE, t0_ns=_T0_NS, duration_ns=_DURATION_NS)
        times.append(time.perf_counter() - t0)
    best = min(times)
    print(f"\nwavefront extraction: {1000 * best:.1f} ms "
          f"({_NODES} ranks, {n_waits} waits)")
    assert wave.ranks_reached == _NODES
    assert wave.undamped
    assert best < 2.0, (
        f"wavefront extraction took {best:.2f}s over {n_waits} waits — "
        "algorithmic regression (bar is ~10 ms measured)")
