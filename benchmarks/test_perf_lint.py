"""Perf floor for the detlint two-pass engine.

The lint gate runs on every CI push, so the whole-tree analysis —
index pass, taint fixpoint, and all 19 rules over every file in
``src/repro`` — must stay interactive.  The floor is loose (a healthy
run is ~2s); the gate exists to catch an accidentally quadratic rule
or a taint fixpoint that stops converging, not to measure the
micro-cost of one rule.  Run with ``--benchmark-only -s`` to see the
per-rule cost table.
"""

import time
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.engine import lint_paths

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src" / "repro"

#: Wall-clock floor for one full-tree analysis (ISSUE acceptance: the
#: taint pass included, under 5 seconds).
FULL_TREE_FLOOR_S = 5.0


def test_full_tree_lint_stays_interactive(benchmark):
    baseline_file = REPO_ROOT / "detlint-baseline.json"
    baseline = (Baseline.load(baseline_file)
                if baseline_file.is_file() else None)

    def run():
        t0 = time.perf_counter()
        report = lint_paths([SRC], baseline=baseline)
        return report, time.perf_counter() - t0

    report, wall = benchmark.pedantic(run, rounds=1, iterations=1)

    assert report.files > 100  # the walk really saw the package
    assert report.clean, "\n".join(f.format() for f in report.findings)
    top = sorted(report.rule_costs.items(), key=lambda kv: -kv[1])[:5]
    print(f"\nlint perf: {report.files} files in {wall:.2f}s "
          f"({report.files / wall:.0f} files/s)")
    for rid, cost in top:
        print(f"  {rid:9s} {cost * 1e3:7.1f}ms")
    assert wall < FULL_TREE_FLOOR_S, (
        f"full-tree lint took {wall:.2f}s, over the "
        f"{FULL_TREE_FLOOR_S}s floor — check the per-rule cost table")
