"""Benchmark E4: Application slowdown vs node count per noise granularity.

Regenerates the E4 table (see DESIGN.md experiment index) at the
CI-sized "small" scale and asserts its qualitative shape checks.  The
benchmark time is the full cost of reproducing the figure.  Run with
``--benchmark-only -s`` to see the rendered table.
"""

from repro.harness import run_experiment


def test_e4_app_scaling(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("E4", "small"), rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.passed, (
        "E4 shape checks failed: " + str(report.failed_checks()))
