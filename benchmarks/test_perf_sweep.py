"""Micro-benchmarks for the sweep engine and the DES hot path.

Three measurements, printed so the perf trajectory is visible from CI
logs (run with ``--benchmark-only -s``):

* raw event-queue throughput (events/sec) of the simulator core;
* wall-clock speedup of a 4-point sweep at ``workers=4`` vs
  ``workers=1`` (skipped on machines with < 4 CPUs);
* baseline-cache effectiveness: a second identical sweep must
  re-simulate **zero** quiet baselines.

These are perf *floors*, not shape checks: thresholds are set well
below healthy values so only a real regression trips them.
"""

import json
import os
import time

import pytest

from repro.core import ExperimentConfig, sweep_records
from repro.parallel import SweepExecutor
from repro.sim import Environment

#: One sweep point heavy enough to amortise process fan-out (~0.5-1 s).
_HEAVY = dict(app="bsp", seed=3,
              app_params={"work_ns": 2_000_000, "iterations": 150})
_HEAVY_NODES = [32]
_HEAVY_PATTERNS = ["quiet", "2.5pct@10Hz", "2.5pct@100Hz", "2.5pct@1000Hz"]


def _events_per_second(n_events: int) -> float:
    env = Environment()

    def ticker(env):
        for _ in range(n_events):
            yield env.timeout(10)

    env.process(ticker(env))
    t0 = time.perf_counter()
    env.run()
    elapsed = time.perf_counter() - t0
    return env.events_processed / elapsed


def test_event_queue_throughput(benchmark):
    rate = benchmark.pedantic(lambda: _events_per_second(200_000),
                              rounds=3, iterations=1)
    print(f"\nevent-queue throughput: {rate:,.0f} events/sec")
    assert rate > 100_000, (
        f"DES hot path regressed: {rate:,.0f} events/sec "
        "(healthy is ~1M on a laptop core)")


@pytest.mark.skipif((os.cpu_count() or 1) < 4,
                    reason="speedup measurement needs >= 4 CPUs")
def test_parallel_sweep_speedup(benchmark):
    base = ExperimentConfig(**_HEAVY)
    kwargs = dict(nodes=_HEAVY_NODES, patterns=_HEAVY_PATTERNS)

    t0 = time.perf_counter()
    serial = sweep_records(base, workers=1, **kwargs)
    serial_s = time.perf_counter() - t0

    def parallel_run():
        t0 = time.perf_counter()
        records = sweep_records(base, workers=4, **kwargs)
        return records, time.perf_counter() - t0

    parallel, parallel_s = benchmark.pedantic(parallel_run,
                                              rounds=1, iterations=1)
    speedup = serial_s / parallel_s
    print(f"\n4-point sweep: serial {serial_s:.2f}s, "
          f"workers=4 {parallel_s:.2f}s -> {speedup:.2f}x")
    assert json.dumps(serial, sort_keys=True) == \
        json.dumps(parallel, sort_keys=True), (
        "parallel sweep output diverged from serial")
    assert speedup >= 2.0, (
        f"expected >= 2x wall-clock speedup with 4 workers on a 4-point "
        f"sweep, got {speedup:.2f}x")


def test_baseline_cache_hits_on_second_run(benchmark, tmp_path):
    base = ExperimentConfig(app="bsp", seed=3,
                            app_params={"work_ns": 1_000_000,
                                        "iterations": 20})
    workers = 2 if (os.cpu_count() or 1) >= 2 else 1
    kwargs = dict(nodes=[4, 8], patterns=["quiet", "2.5pct@100Hz"])

    first = SweepExecutor(workers=workers, cache=tmp_path)
    first.run_sweep(base, **kwargs)
    assert first.last_stats.quiet_simulated == 2

    def second_run():
        ex = SweepExecutor(workers=workers, cache=tmp_path)
        ex.run_sweep(base, **kwargs)
        return ex

    second = benchmark.pedantic(second_run, rounds=1, iterations=1)
    stats = second.last_stats
    print(f"\nsecond sweep: {stats.as_dict()}")
    assert stats.quiet_simulated == 0, (
        "quiet baselines were re-simulated despite a warm cache")
    assert stats.quiet_cached == 2
    assert second.cache.stats.hits == 4
    assert second.cache.stats.misses == 0
    assert stats.wall_s < first.last_stats.wall_s, (
        "cache-served sweep should beat the cold sweep")
