"""Benchmark E1: FTQ noise signatures and spectra per kernel preset.

Regenerates the E1 table (see DESIGN.md experiment index) at the
CI-sized "small" scale and asserts its qualitative shape checks.  The
benchmark time is the full cost of reproducing the figure.  Run with
``--benchmark-only -s`` to see the rendered table.
"""

from repro.harness import run_experiment


def test_e1_ftq_spectra(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("E1", "small"), rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.passed, (
        "E1 shape checks failed: " + str(report.failed_checks()))
