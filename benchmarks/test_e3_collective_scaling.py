"""Benchmark E3: Allreduce latency vs node count per noise granularity.

Regenerates the E3 table (see DESIGN.md experiment index) at the
CI-sized "small" scale and asserts its qualitative shape checks.  The
benchmark time is the full cost of reproducing the figure.  Run with
``--benchmark-only -s`` to see the rendered table.
"""

from repro.harness import run_experiment


def test_e3_collective_scaling(benchmark):
    report = benchmark.pedantic(
        lambda: run_experiment("E3", "small"), rounds=1, iterations=1)
    print()
    print(report.render())
    assert report.passed, (
        "E3 shape checks failed: " + str(report.failed_checks()))
