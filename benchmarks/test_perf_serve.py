"""Load test for the experiment server.

Replays >= 1000 concurrent mixed compare/sweep requests against a warm
:class:`~repro.serve.BackgroundServer` from a single asyncio loop
(:func:`~repro.serve.submit_async` holds every request open at once)
and gates on the service-level properties the ISSUE pins down:

* p99 request wall time stays under a loose floor once the working
  set is warm — served-from-cache requests must not queue behind the
  process pool;
* cache hit rate: the request mix revisits a small set of distinct
  points, so the overwhelming majority of point consumptions must be
  answered by dedup or the on-disk cache, not fresh simulation;
* dedupe effectiveness: identical in-flight jobs collapse — the
  number of *simulations* equals the number of *distinct points* in
  the mix, exactly.

Thresholds are perf floors (set well below healthy values), not shape
checks.  Run with ``--benchmark-only -s`` to see the numbers.
"""

import asyncio
import json
import statistics
import time

from repro.serve import BackgroundServer, ServeClient, job_records, submit_async

#: Cheap point: ~10 ms of simulated work, so 1000 requests stay fast.
_PARAMS = {"work_ns": 500_000, "iterations": 10}

#: The replay mix: 8 distinct jobs over 9 distinct simulation points
#: (3 quiet baselines shared across jobs, 6 noisy cells), cycled to
#: build the request
#: list.  Mixed kinds and overlapping points are the point — overlap is
#: what exercises dedup and the cache.
_JOBS = [
    {"kind": "compare", "app": "bsp", "nodes": 4,
     "pattern": "2.5pct@10Hz", "seed": 7, "app_params": _PARAMS},
    {"kind": "compare", "app": "bsp", "nodes": 4,
     "pattern": "2.5pct@100Hz", "seed": 7, "app_params": _PARAMS},
    {"kind": "compare", "app": "bsp", "nodes": 8,
     "pattern": "2.5pct@10Hz", "seed": 7, "app_params": _PARAMS},
    {"kind": "sweep", "app": "bsp", "nodes": [4, 8],
     "patterns": ["quiet", "2.5pct@10Hz"], "seed": 7,
     "app_params": _PARAMS},
    {"kind": "sweep", "app": "bsp", "nodes": [4, 8],
     "patterns": ["2.5pct@10Hz", "2.5pct@100Hz"], "seed": 7,
     "app_params": _PARAMS},
    {"kind": "compare", "app": "bsp", "nodes": 16,
     "pattern": "2.5pct@10Hz", "seed": 7, "app_params": _PARAMS},
    {"kind": "sweep", "app": "bsp", "nodes": [16],
     "patterns": ["quiet", "2.5pct@100Hz"], "seed": 7,
     "app_params": _PARAMS},
    {"kind": "compare", "app": "bsp", "nodes": 8,
     "pattern": "2.5pct@100Hz", "seed": 7, "app_params": _PARAMS},
]

#: Every distinct simulation point the mix can possibly touch.
_DISTINCT_POINTS = 9

N_REQUESTS = 1000
CONCURRENCY = 64

#: p99 floor for warm (cache/dedup-dominated) requests.  Loose: a
#: healthy run serves warm requests in single-digit milliseconds.
P99_FLOOR_S = 2.0


async def _replay(host, port, jobs):
    """Fire all jobs with a bounded-concurrency gate; return
    ``(latencies_s, event_lists)`` in submission order."""
    gate = asyncio.Semaphore(CONCURRENCY)
    latencies = [0.0] * len(jobs)
    results = [None] * len(jobs)

    async def one(i, job):
        async with gate:
            t0 = time.perf_counter()
            events = await submit_async(host, port, job)
            latencies[i] = time.perf_counter() - t0
            results[i] = events

    await asyncio.gather(*[one(i, j) for i, j in enumerate(jobs)])
    return latencies, results


def _percentile(values, q):
    ordered = sorted(values)
    idx = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[idx]


def test_serve_load_1000_concurrent_requests(benchmark, tmp_path):
    jobs = [_JOBS[i % len(_JOBS)] for i in range(N_REQUESTS)]

    with BackgroundServer(workers=2, cache=str(tmp_path)) as bg:
        host, port = bg.address
        client = ServeClient(host, port)
        # Warm pass: every distinct point simulated exactly once.
        for job in _JOBS:
            _, stats = client.records(job)
            assert stats["errors"] == 0
        warm = client.metrics()["serve"]
        assert warm["points_simulated"] == _DISTINCT_POINTS, (
            f"warm pass simulated {warm['points_simulated']} points, "
            f"expected exactly {_DISTINCT_POINTS} (dedup broken?)")

        def replay():
            return asyncio.run(_replay(host, port, jobs))

        latencies, results = benchmark.pedantic(replay, rounds=1,
                                                iterations=1)
        after = client.metrics()["serve"]

    # -- every request completed with a coherent stream ---------------------
    assert all(r is not None for r in results)
    blobs = {}
    for job, events in zip(jobs, results):
        records, stats = job_records(events)
        assert stats and stats["errors"] == 0
        key = json.dumps(job, sort_keys=True)
        blob = json.dumps(records, sort_keys=True)
        assert blobs.setdefault(key, blob) == blob, (
            "identical jobs returned different records under load")

    # -- dedupe effectiveness: zero fresh simulations under load ------------
    simulated = after["points_simulated"] - warm["points_simulated"]
    consumed = after["points_total"] - warm["points_total"]
    served = (after["points_cached"] + after["points_deduped"]
              - warm["points_cached"] - warm["points_deduped"])
    hit_rate = served / consumed
    assert simulated == 0, (
        f"{simulated} points re-simulated under load despite a fully "
        "warm cache")
    assert hit_rate >= 0.999, f"cache+dedup hit rate {hit_rate:.4f}"

    # -- latency ------------------------------------------------------------
    p50 = _percentile(latencies, 0.50)
    p99 = _percentile(latencies, 0.99)
    wall = max(latencies)
    print(f"\nserve load: {N_REQUESTS} requests, concurrency "
          f"{CONCURRENCY}: p50 {p50 * 1e3:.1f}ms  p99 {p99 * 1e3:.1f}ms  "
          f"max {wall * 1e3:.1f}ms  mean "
          f"{statistics.fmean(latencies) * 1e3:.1f}ms")
    print(f"serve load: consumed {consumed} points, hit rate "
          f"{hit_rate:.4f}, requests_total {after['requests_total']}")
    assert p99 < P99_FLOOR_S, (
        f"p99 latency {p99:.3f}s breaches the {P99_FLOOR_S}s floor for "
        "warm requests")


#: Requests per arm of the obs-on vs obs-off throughput comparison.
N_OBS_REQUESTS = 300

#: Observability-on throughput must stay within this fraction of the
#: zero-telemetry throughput (the "observer effect" budget — the same
#: property E7 gates for the simulation layer, here for the service).
OBS_THROUGHPUT_FLOOR = 0.9


def test_serve_load_full_observability_on(benchmark, tmp_path):
    """The load test with the whole observability plane lit up:
    global metrics + det_check on, every 8th job requesting an
    end-to-end trace, the oplog ring collecting every request, and a
    sampler thread scraping ``/metrics?window=`` throughout (the
    ``service-timeseries.json`` CI artifact).  Gates: zero errors,
    p99 under the same floor as the dark run, and throughput within
    ``OBS_THROUGHPUT_FLOOR`` of a paired zero-telemetry run."""
    import threading

    from repro import obs

    jobs = [dict(_JOBS[i % len(_JOBS)]) for i in range(N_OBS_REQUESTS)]
    jobs_traced = [dict(j, trace=(i % 8 == 0))
                   for i, j in enumerate(jobs)]

    with BackgroundServer(workers=2, cache=str(tmp_path)) as bg:
        host, port = bg.address
        client = ServeClient(host, port)
        for job in _JOBS:  # warm: every distinct point simulated once
            _, stats = client.records(job)
            assert stats["errors"] == 0

        def replay_dark():
            return asyncio.run(_replay(host, port, jobs))

        def replay_lit():
            return asyncio.run(_replay(host, port, jobs_traced))

        # Paired throughput arms, same mix, same warm cache.
        t0 = time.perf_counter()
        dark_lat, dark_results = replay_dark()
        dark_s = time.perf_counter() - t0

        obs.disable()
        obs.configure(metrics=True, det_check=True)
        timeseries = []
        stop = threading.Event()

        def sample():
            while not stop.is_set():
                try:
                    doc = client.metrics(window=5)
                except Exception:
                    break
                timeseries.append({"serve": doc["serve"],
                                   "window": doc.get("window", {})})
                stop.wait(0.2)

        sampler = threading.Thread(target=sample, daemon=True)
        sampler.start()
        try:
            t0 = time.perf_counter()
            lit_lat, lit_results = benchmark.pedantic(replay_lit, rounds=1,
                                                      iterations=1)
            lit_s = time.perf_counter() - t0
        finally:
            stop.set()
            sampler.join(timeout=5)
            obs.disable()

        with open("service-timeseries.json", "w") as f:
            json.dump({"samples": timeseries,
                       "requests": N_OBS_REQUESTS,
                       "wall_s": round(lit_s, 3)}, f, indent=2)
        after = client.metrics()["serve"]
        errors = client.logs(level="error")

    # -- correctness under full observability --------------------------------
    for results in (dark_results, lit_results):
        assert all(r is not None for r in results)
        for events in results:
            _, stats = job_records(events)
            assert stats and stats["errors"] == 0
    traces = [e for events in lit_results for e in events
              if e.get("event") == "trace"]
    assert len(traces) == sum(1 for j in jobs_traced if j.get("trace"))
    assert all(t["request_id"].startswith("r-") for t in traces)
    assert after["point_errors"] == 0
    assert errors["count"] == 0, f"error log not empty: {errors['events']}"

    # -- observer effect ------------------------------------------------------
    dark_rps = N_OBS_REQUESTS / dark_s
    lit_rps = N_OBS_REQUESTS / lit_s
    ratio = lit_rps / dark_rps
    p99 = _percentile(lit_lat, 0.99)
    print(f"\nobs-on load: dark {dark_rps:.0f} req/s, lit "
          f"{lit_rps:.0f} req/s (ratio {ratio:.3f}), p99 "
          f"{p99 * 1e3:.1f}ms, {len(traces)} traced, "
          f"{len(timeseries)} timeseries samples")
    assert p99 < P99_FLOOR_S, (
        f"p99 {p99:.3f}s breaches the {P99_FLOOR_S}s floor with "
        "observability on")
    assert ratio >= OBS_THROUGHPUT_FLOOR, (
        f"observability tax too high: {lit_rps:.0f} req/s lit vs "
        f"{dark_rps:.0f} req/s dark (ratio {ratio:.3f} < "
        f"{OBS_THROUGHPUT_FLOOR})")


def test_serve_identical_burst_simulates_once(benchmark, tmp_path):
    """100 identical jobs arriving together -> exactly 2 simulations
    (the noisy point and its quiet twin), everything else joined."""
    job = {"kind": "compare", "app": "bsp", "nodes": 4,
           "pattern": "2.5pct@10Hz", "seed": 11, "app_params": _PARAMS}

    with BackgroundServer(workers=2, cache=str(tmp_path)) as bg:
        host, port = bg.address
        client = ServeClient(host, port)

        def burst():
            return asyncio.run(_replay(host, port, [job] * 100))

        latencies, results = benchmark.pedantic(burst, rounds=1,
                                                iterations=1)
        serve = client.metrics()["serve"]

    blobs = set()
    for events in results:
        records, stats = job_records(events)
        assert stats["errors"] == 0
        blobs.add(json.dumps(records, sort_keys=True))
    assert len(blobs) == 1
    assert serve["points_simulated"] == 2, (
        f"burst of identical jobs simulated {serve['points_simulated']} "
        "points; in-flight dedup should collapse them to 2")
    print(f"\nidentical burst: simulated {serve['points_simulated']}, "
          f"deduped {serve['points_deduped']}, cached "
          f"{serve['points_cached']}, p99 "
          f"{_percentile(latencies, 0.99) * 1e3:.1f}ms")
