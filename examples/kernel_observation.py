#!/usr/bin/env python3
"""Kernel observation: attach the observer and name the ghost.

Runs a halo-exchange application on a commodity-Linux machine with the
ktau observer at full trace level, then shows the three views the
framework provides:

1. the per-activity kernel profile of one node (who ran, for how long);
2. per-iteration attribution (which iterations were struck, by what);
3. the blind spectral hunt from app timings alone, for comparison.

Run:  python examples/kernel_observation.py
"""

import numpy as np

from repro.analysis import format_table
from repro.apps import StencilApp
from repro.core import Machine, MachineConfig
from repro.ktau import (
    KtauTracer,
    attribute_intervals,
    build_kernel_profile,
    candidate_frequencies,
    explain_slow_intervals,
    hunt,
)
from repro.noise import InjectionPlan


def main() -> None:
    machine = Machine(MachineConfig(
        n_nodes=9, kernel="commodity-linux",
        injection=InjectionPlan("1pct@5Hz", seed=7), seed=7))
    tracer = KtauTracer(machine, level="trace", overhead="trace")
    app = StencilApp(work_ns=10_000_000, halo_bytes=16_384,
                     iterations=100, dt_interval=5).bind_tracer(tracer)
    machine.run_to_completion(machine.launch(app))

    # 1. The kernel profile of the grid's centre node.
    node = 4
    profile = build_kernel_profile(tracer, node, 0, machine.env.now)
    rows = [[e.source, e.kind, e.count, f"{e.total_ns / 1e6:.3f}",
             f"{100 * e.total_ns / profile.window_ns:.4f}"]
            for e in sorted(profile.entries, key=lambda e: e.total_ns,
                            reverse=True)]
    print(format_table(["source", "kind", "count", "total ms", "% window"],
                       rows, title=f"Kernel profile, node {node} "
                                   f"({profile.window_ns / 1e6:.0f} ms window)"))

    # 2. Attribution: name the thief behind each slow iteration.
    atts = attribute_intervals(tracer, node, "stencil:iteration")
    slow = explain_slow_intervals(atts, threshold=1.2)
    print(f"\n{len(slow)} of {len(atts)} iterations ran >=1.2x the median:")
    for s in slow[:5]:
        print(f"  iteration {s.attribution.interval.meta.get('i')}: "
              f"{s.slowdown_vs_median:.2f}x median — dominant thief: "
              f"{s.thief} ({s.thief_ns / 1e3:.0f} us)")

    # 3. Blind hunt from per-iteration durations only.
    durations = np.array([a.duration_ns for a in atts], dtype=float)
    sample_interval = int(durations.mean())
    noise = machine.nodes[node].noise
    leaf_sources = getattr(noise, "sources", [noise])
    candidates = candidate_frequencies(machine.nodes[node].config,
                                       leaf_sources)
    report = hunt(durations, sample_interval, candidates, tolerance=0.25)
    print("\nBlind spectral hunt over iteration durations:")
    for s in report.suspects:
        label = s.matched_source or "UNEXPLAINED GHOST"
        print(f"  {s.frequency_hz:8.2f} Hz  power={s.power:10.3g}  -> {label}")
    print("\nDirect observation names every thief; the blind hunt only "
          "sees strong periodicities.")


if __name__ == "__main__":
    main()
