#!/usr/bin/env python3
"""Noise amplification study: simulation vs analytic model vs scale.

Sweeps machine size for the BSP workload under coarse and fine noise,
comparing the discrete-event simulation against the semi-analytic
order-statistics model, then extrapolates the model to capability-class
machine sizes.  This is the workflow for answering "what will this
noise pattern cost at 64k nodes?" without owning 64k nodes.

Run:  python examples/noise_amplification_study.py
"""

from repro.analysis import BSPModel, format_table
from repro.core import ExperimentConfig, run_with_baseline
from repro.noise import parse_pattern
from repro.sim import MILLISECOND, US

WORK = 1 * MILLISECOND
ROUND_COST = 2 * 500 + 2000 + 1000  # 2o + L + tx post (seastar preset)
PATTERNS = ("2.5pct@10Hz", "2.5pct@1000Hz")


def main() -> None:
    model = BSPModel(work_ns=WORK, round_cost_ns=ROUND_COST)

    rows = []
    for p in (4, 16, 64):
        for pattern in PATTERNS:
            src = parse_pattern(pattern)
            cmp = run_with_baseline(ExperimentConfig(
                app="bsp", nodes=p, noise_pattern=pattern, seed=3,
                app_params=dict(work_ns=WORK, iterations=50)))
            pred = model.predict(p, src.period, src.duration)
            rows.append([p, pattern,
                         f"{cmp.slowdown.slowdown_percent:.1f}%",
                         f"{100 * pred.slowdown_fraction:.1f}%"])
    print(format_table(["nodes", "pattern", "simulated", "model"],
                       rows, title="Simulation vs analytic model "
                                   "(BSP, 1 ms grain, allreduce)"))

    rows = []
    for p in (256, 1024, 4096, 16384, 65536):
        for pattern in PATTERNS:
            src = parse_pattern(pattern)
            pred = model.predict(p, src.period, src.duration)
            rows.append([p, pattern,
                         f"{100 * pred.slowdown_fraction:.1f}%",
                         f"{pred.amplification:.1f}x"])
    print()
    print(format_table(["nodes", "pattern", "predicted slowdown",
                        "amplification"],
                       rows, title="Model extrapolation beyond "
                                   "simulation reach"))
    coarse = parse_pattern(PATTERNS[0])
    ceiling = coarse.duration / (WORK + 16 * ROUND_COST)
    print(f"\nThe coarse curve saturates near event/iteration = "
          f"{100 * ceiling:.0f}%: at scale, *every* iteration waits for "
          f"one full {coarse.duration // (US)} us event somewhere.")


if __name__ == "__main__":
    main()
