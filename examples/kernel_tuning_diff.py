#!/usr/bin/env python3
"""Kernel tuning workflow: profile, diff, verify.

The operator loop the observation framework enables:

1. profile the production kernel under the real workload;
2. apply a tuning (here: the ``tuned-linux`` preset — HZ 1000 → 100,
   daemons trimmed) and profile again;
3. *diff* the two profiles to verify each activity moved the way the
   tuning intended — and quantify the application-level win.

Run:  python examples/kernel_tuning_diff.py
"""

from repro.analysis import format_table
from repro.apps import StencilApp
from repro.core import Machine, MachineConfig
from repro.ktau import KtauTracer, build_kernel_profile, diff_profiles
from repro.sim import MS


def profile_kernel(kernel: str, seed: int = 13):
    machine = Machine(MachineConfig(n_nodes=4, kernel=kernel, seed=seed))
    tracer = KtauTracer(machine)
    app = StencilApp(work_ns=20 * MS, halo_bytes=8192, iterations=100,
                     dt_interval=5).bind_tracer(tracer)
    machine.run_to_completion(machine.launch(app))
    return (build_kernel_profile(tracer, 0, 0, machine.env.now),
            app.makespan_ns())


def main() -> None:
    before, before_span = profile_kernel("commodity-linux")
    after, after_span = profile_kernel("tuned-linux")
    diff = diff_profiles(before, after)

    rows = []
    for d in sorted(diff.deltas, key=lambda d: d.utilization_delta):
        status = ("GONE" if d.vanished else
                  "NEW" if d.appeared else "")
        rows.append([d.source, d.kind,
                     f"{d.before_rate_hz:.2f}", f"{d.after_rate_hz:.2f}",
                     f"{1e4 * d.before_utilization:.2f}",
                     f"{1e4 * d.after_utilization:.2f}",
                     status])
    print(format_table(
        ["source", "kind", "rate before /s", "rate after /s",
         "util before (bp)", "util after (bp)", ""],
        rows,
        title="Kernel profile diff: commodity-linux -> tuned-linux "
              "(bp = basis points, 0.01%)"))

    print(f"\ntotal kernel share: {100 * diff.before_utilization:.3f}% -> "
          f"{100 * diff.after_utilization:.3f}%  "
          f"(delta {100 * diff.utilization_delta:+.3f} points)")
    if diff.improvements():
        best = diff.improvements()[0]
        print(f"biggest single win: {best.source} "
              f"({100 * -best.utilization_delta:.3f} points recovered)")
    print(f"application makespan: {before_span / 1e6:.1f} ms -> "
          f"{after_span / 1e6:.1f} ms "
          f"({100 * (1 - after_span / before_span):.2f}% faster)")


if __name__ == "__main__":
    main()
