#!/usr/bin/env python3
"""Quickstart: measure how kernel noise slows a parallel application.

Builds a 32-node simulated machine, runs the POP-like ocean skeleton
quiet and under the canonical 2.5 % noise granularity sweep, and prints
the slowdown table — the library's one-screen demonstration.

Run:  python examples/quickstart.py
"""

from repro.analysis import format_table
from repro.core import ExperimentConfig, run_with_baseline
from repro.noise import CANONICAL_SWEEP


def main() -> None:
    rows = []
    for pattern in CANONICAL_SWEEP:
        cmp = run_with_baseline(ExperimentConfig(
            app="pop", nodes=32, noise_pattern=pattern, seed=1,
            app_params=dict(baroclinic_ns=5_000_000, solver_iterations=30,
                            solver_compute_ns=20_000, iterations=4)))
        sd = cmp.slowdown
        rows.append([pattern,
                     f"{cmp.quiet.makespan_ns / 1e6:.2f}",
                     f"{cmp.noisy.makespan_ns / 1e6:.2f}",
                     f"{sd.slowdown_percent:.1f}%",
                     f"{sd.amplification:.1f}x",
                     sd.verdict])

    print(format_table(
        ["pattern (2.5% net)", "quiet ms", "noisy ms", "slowdown",
         "amplification", "verdict"],
        rows,
        title="POP-like ocean skeleton, 32 nodes — same net noise, "
              "three granularities"))
    print("Same stolen CPU; wildly different application cost.")
    print("Rare-but-long kernel events are amplified by the solver's")
    print("allreduce storms, while frequent-but-tiny ones are absorbed.")


if __name__ == "__main__":
    main()
