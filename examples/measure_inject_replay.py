#!/usr/bin/env python3
"""Measure → inject → replay: the closed noise-engineering loop.

1. *Measure* a commodity kernel's noise signature with the selfish
   benchmark (per-event detour capture).
2. *Replay* the captured trace as an injected noise source on a
   pristine lightweight-kernel machine.
3. Verify the replayed machine exhibits the same application slowdown
   as the original — the capability that lets one machine's ghost be
   studied on another.

Run:  python examples/measure_inject_replay.py
"""

from repro.apps import BSPApp
from repro.core import Machine, MachineConfig
from repro.microbench import SelfishBenchmark
from repro.noise import TraceNoise
from repro.sim import SECOND


def run_bsp(machine: Machine) -> int:
    app = BSPApp(work_ns=2_000_000, iterations=100)
    machine.run_to_completion(machine.launch(app))
    return app.makespan_ns()


def main() -> None:
    window = 2 * SECOND

    # 1. Measure the donor machine's noise, per node.
    donor = Machine(MachineConfig(n_nodes=8, kernel="commodity-linux",
                                  seed=11))
    captures = {}
    for node in donor.nodes:
        res = SelfishBenchmark(window_ns=window, threshold_ns=500).run(
            node, start_time=0)
        captures[node.node_id] = [(d.start, d.duration) for d in res.detours]
        if node.node_id == 0:
            print(f"node 0 capture: {res.count} detours, "
                  f"{100 * res.detour_fraction:.3f}% of CPU, "
                  f"longest {res.durations_ns().max() / 1e3:.0f} us")

    # 2. Replay each capture on a pristine machine via TraceNoise.
    def replay_factory(node_id: int, phase: int, seed: int) -> TraceNoise:
        return TraceNoise(captures[node_id], repeat_every=window,
                          name=f"replay-node{node_id}")

    from repro.noise import InjectionPlan
    replay = Machine(MachineConfig(
        n_nodes=8, kernel="lightweight",
        injection=InjectionPlan(replay_factory), seed=11))

    # 3. Compare application behaviour: donor vs replay vs quiet.
    quiet = Machine(MachineConfig(n_nodes=8, kernel="lightweight", seed=11))
    spans = {
        "quiet lightweight": run_bsp(quiet),
        "donor (commodity-linux)": run_bsp(
            Machine(MachineConfig(n_nodes=8, kernel="commodity-linux",
                                  seed=11))),
        "replayed capture": run_bsp(replay),
    }
    base = spans["quiet lightweight"]
    print("\nBSP makespan (100 x 2 ms iterations, 8 nodes):")
    for name, span in spans.items():
        print(f"  {name:<26} {span / 1e6:9.2f} ms  "
              f"(+{100 * (span / base - 1):.2f}%)")
    donor_sd = spans["donor (commodity-linux)"] / base - 1
    replay_sd = spans["replayed capture"] / base - 1
    gap = abs(replay_sd - donor_sd)
    print(f"\nreplay reproduces the donor's slowdown within "
          f"{100 * gap:.2f} percentage points")


if __name__ == "__main__":
    main()
