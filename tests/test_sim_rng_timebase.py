"""Tests for the RNG tree and the time-base helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    MICROSECOND,
    MILLISECOND,
    RandomTree,
    SECOND,
    derive_seed,
    hz_to_period_ns,
    ms_from_ns,
    ns_from_ms,
    ns_from_s,
    ns_from_us,
    period_ns_to_hz,
    s_from_ns,
    us_from_ns,
)


# -- timebase ------------------------------------------------------------------

def test_unit_constants_consistent():
    assert MICROSECOND == 1_000
    assert MILLISECOND == 1_000 * MICROSECOND
    assert SECOND == 1_000 * MILLISECOND


def test_conversions_roundtrip():
    assert ns_from_s(1.5) == 1_500_000_000
    assert ns_from_ms(2.5) == 2_500_000
    assert ns_from_us(0.5) == 500
    assert s_from_ns(SECOND) == 1.0
    assert ms_from_ns(MILLISECOND) == 1.0
    assert us_from_ns(MICROSECOND) == 1.0


def test_hz_period_inverse():
    assert hz_to_period_ns(100) == 10 * MILLISECOND
    assert period_ns_to_hz(10 * MILLISECOND) == pytest.approx(100.0)
    with pytest.raises(ValueError):
        hz_to_period_ns(0)
    with pytest.raises(ValueError):
        period_ns_to_hz(0)


@given(hz=st.floats(min_value=0.01, max_value=1e6,
                    allow_nan=False, allow_infinity=False))
def test_property_hz_roundtrip(hz):
    period = hz_to_period_ns(hz)
    assert period_ns_to_hz(period) == pytest.approx(hz, rel=0.01)


# -- rng tree --------------------------------------------------------------------

def test_derive_seed_stable_and_distinct():
    a = derive_seed(42, "x")
    assert a == derive_seed(42, "x")
    assert a != derive_seed(42, "y")
    assert a != derive_seed(43, "x")


def test_generator_streams_reproducible():
    tree = RandomTree(7)
    a = tree.generator("node0/noise").integers(0, 1 << 30, size=10)
    b = tree.generator("node0/noise").integers(0, 1 << 30, size=10)
    assert (a == b).all()


def test_generator_streams_independent():
    tree = RandomTree(7)
    a = tree.generator("a").integers(0, 1 << 30, size=10)
    b = tree.generator("b").integers(0, 1 << 30, size=10)
    assert (a != b).any()


def test_child_tree_namespacing():
    tree = RandomTree(7)
    child = tree.child("node3")
    direct = tree.generator("node3/noise").integers(0, 1 << 30, size=5)
    via_child = child.generator("noise").integers(0, 1 << 30, size=5)
    assert (direct == via_child).all()
    grand = child.child("nic").generator("rx").integers(0, 1 << 30, size=5)
    flat = tree.generator("node3/nic/rx").integers(0, 1 << 30, size=5)
    assert (grand == flat).all()


def test_order_independence():
    """Labels decide the stream, not the order of creation."""
    t1 = RandomTree(5)
    first = t1.generator("alpha").integers(0, 1 << 30, size=4)
    _ = t1.generator("beta").integers(0, 1 << 30, size=4)

    t2 = RandomTree(5)
    _ = t2.generator("beta").integers(0, 1 << 30, size=4)
    second = t2.generator("alpha").integers(0, 1 << 30, size=4)
    assert (first == second).all()
