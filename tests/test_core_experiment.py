"""Tests for experiment configuration, runs, baselines, and sweeps."""

import pytest

from repro.core import (
    ComparisonResult,
    ExperimentConfig,
    Machine,
    MachineConfig,
    RunResult,
    run_experiment,
    run_with_baseline,
    sweep,
    sweep_records,
)
from repro.errors import ConfigError
from repro.net import TorusTopology

BSP_SMALL = {"work_ns": 500_000, "iterations": 10}


# -- machine config -------------------------------------------------------------

def test_machine_config_validation():
    with pytest.raises(ConfigError):
        MachineConfig(n_nodes=0)
    with pytest.raises(ConfigError):
        Machine(MachineConfig(n_nodes=4, topology="torus:2x4"))  # 8 != 4
    with pytest.raises(ConfigError):
        Machine(MachineConfig(n_nodes=4, topology="moebius"))


def test_machine_topology_specs():
    m = Machine(MachineConfig(n_nodes=8, topology="torus:2x4"))
    assert isinstance(m.network.topology, TorusTopology)
    m2 = Machine(MachineConfig(n_nodes=8, topology="fat-tree"))
    assert m2.network.topology.n_nodes == 8
    m3 = Machine(MachineConfig(n_nodes=8,
                               topology=TorusTopology((2, 4))))
    assert m3.network.topology.dims == (2, 4)


def test_machine_presets_resolve():
    m = Machine(MachineConfig(n_nodes=2, kernel="tuned-linux",
                              network="gige"))
    assert m.nodes[0].config.hz == 100
    assert m.network.params.L == 30_000


# -- experiment config ------------------------------------------------------------

def test_experiment_injected_utilization():
    assert ExperimentConfig(noise_pattern="quiet").injected_utilization() == 0
    cfg = ExperimentConfig(noise_pattern="2.5pct@100Hz")
    assert cfg.injected_utilization() == pytest.approx(0.025)


def test_quiet_twin_only_changes_pattern():
    cfg = ExperimentConfig(app="pop", nodes=32, noise_pattern="2.5pct@10Hz",
                           seed=7)
    twin = cfg.quiet_twin()
    assert twin.noise_pattern == "quiet"
    assert (twin.app, twin.nodes, twin.seed) == ("pop", 32, 7)


# -- run_experiment ------------------------------------------------------------------

def test_run_experiment_returns_result():
    res = run_experiment(ExperimentConfig(app="bsp", nodes=4,
                                          app_params=BSP_SMALL))
    assert isinstance(res, RunResult)
    assert res.n_nodes == 4
    assert res.iteration_durations_ns.shape == (4, 10)
    assert res.makespan_ns > 0
    assert res.events_processed > 0
    assert res.meta["workload"]["app"] == "bsp"


def test_run_experiment_deterministic_in_seed():
    cfg = ExperimentConfig(app="bsp", nodes=8, noise_pattern="2.5pct@100Hz",
                           seed=5, app_params=BSP_SMALL)
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a.makespan_ns == b.makespan_ns
    assert (a.iteration_durations_ns == b.iteration_durations_ns).all()


def test_run_experiment_seed_changes_outcome():
    def span(seed):
        return run_experiment(ExperimentConfig(
            app="bsp", nodes=8, noise_pattern="2.5pct@100Hz", seed=seed,
            app_params=BSP_SMALL)).makespan_ns

    assert span(1) != span(2)


def test_run_experiment_with_observer():
    res, tracer = run_experiment(
        ExperimentConfig(app="bsp", nodes=2, observer="trace",
                         app_params=BSP_SMALL),
        return_tracer=True)
    assert tracer.app_intervals(0, "bsp:iteration")


def test_return_tracer_requires_observer():
    with pytest.raises(ConfigError):
        run_experiment(ExperimentConfig(app="bsp", app_params=BSP_SMALL),
                       return_tracer=True)


# -- baselines ------------------------------------------------------------------------

def test_run_with_baseline_comparison():
    # 100 Hz pattern: the short test run is guaranteed to be struck
    # (a 10 Hz event could miss a ~5 ms run entirely).
    cmp = run_with_baseline(ExperimentConfig(
        app="bsp", nodes=8, noise_pattern="2.5pct@100Hz", seed=1,
        app_params=BSP_SMALL))
    assert isinstance(cmp, ComparisonResult)
    assert cmp.noisy.makespan_ns > cmp.quiet.makespan_ns
    assert cmp.slowdown.slowdown_percent > 0
    d = cmp.as_dict()
    assert d["verdict"] in ("absorbed", "transferred", "amplified")


def test_run_with_baseline_rejects_quiet():
    with pytest.raises(ConfigError):
        run_with_baseline(ExperimentConfig(noise_pattern="quiet"))


# -- sweeps ----------------------------------------------------------------------------

def test_sweep_shares_baselines_and_shapes():
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    results = sweep(base, nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])
    assert set(results) == {(2, "quiet"), (2, "2.5pct@100Hz"),
                            (4, "quiet"), (4, "2.5pct@100Hz")}
    assert isinstance(results[(2, "quiet")], RunResult)
    assert isinstance(results[(2, "2.5pct@100Hz")], ComparisonResult)
    # The comparison's quiet side is the shared baseline object.
    assert results[(2, "2.5pct@100Hz")].quiet is results[(2, "quiet")]


def test_sweep_records_flat_dicts():
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    recs = sweep_records(base, nodes=[2], patterns=["quiet", "2.5pct@100Hz"])
    assert len(recs) == 2
    noisy = [r for r in recs if r["pattern"] == "2.5pct@100Hz"][0]
    assert "slowdown_pct" in noisy
    assert "amplification" in noisy


def test_sweep_validation():
    base = ExperimentConfig(app_params=BSP_SMALL)
    with pytest.raises(ConfigError):
        sweep(base, nodes=[], patterns=["quiet"])


def test_sweep_progress_callback():
    seen = []
    base = ExperimentConfig(app="bsp", app_params=BSP_SMALL)
    sweep(base, nodes=[2], patterns=["2.5pct@100Hz"],
          progress=seen.append)
    assert any("baseline" in s for s in seen)
    assert any("2.5pct@100Hz" in s for s in seen)


# -- the headline physics -------------------------------------------------------------------

def test_coarse_noise_amplifies_fine_noise_absorbs():
    """The paper's central result, end to end in the simulator."""
    def amp(pattern):
        return run_with_baseline(ExperimentConfig(
            app="bsp", nodes=16, noise_pattern=pattern, seed=1,
            app_params={"work_ns": 1_000_000, "iterations": 20},
        )).slowdown.amplification

    coarse = amp("2.5pct@10Hz")
    fine = amp("2.5pct@1000Hz")
    assert coarse > 5.0, "coarse-grained noise must amplify"
    assert fine < 3.0, "fine-grained noise must be (near-)absorbed"
    assert coarse > 3 * fine


def test_synchronized_noise_is_absorbed():
    def slowdown_pct(alignment):
        return run_with_baseline(ExperimentConfig(
            app="bsp", nodes=16, noise_pattern="2.5pct@10Hz", seed=1,
            alignment=alignment,
            app_params={"work_ns": 1_000_000, "iterations": 20},
        )).slowdown.slowdown_percent

    unsync = slowdown_pct("random")
    sync = slowdown_pct("synchronized")
    assert sync < unsync / 2, (
        "co-scheduled noise must hurt far less than unsynchronized")
