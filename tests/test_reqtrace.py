"""Tests for per-request trace stitching (:mod:`repro.obs.reqtrace`).

The headline property is the acceptance bar from the service docs: the
stitched Perfetto document for a traced job is **byte-identical**
between a serial server and a multi-process one — nothing wall-clock
leaks into the trace.
"""

import json

from repro.obs.reqtrace import PHASES, POINT_PID_BASE, REQUEST_PID, RequestTrace
from repro.obs.trace import _HOST_PID, _SIM_PID
from repro.serve import BackgroundServer, ServeClient

#: Small enough that a point is tens of milliseconds.
_PARAMS = {"work_ns": 500_000, "iterations": 10}


def _span(name, ts, dur, *, tid=0, pid=_SIM_PID, cat="mpi"):
    return ("X", cat, name, pid, tid, ts, dur, None)


# -- unit: document shape ----------------------------------------------------

def test_phase_slices_sit_at_logical_timestamps():
    rt = RequestTrace("sweep")
    for name in ("parse", "plan", "simulate", "stream"):
        rt.phase(name)
    doc = rt.to_chrome()
    slices = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    assert [e["name"] for e in slices] == ["parse", "plan", "simulate",
                                           "stream"]
    assert [(e["ts"], e["dur"]) for e in slices] == \
        [(0.0, 1.0), (1.0, 1.0), (2.0, 1.0), (3.0, 1.0)]
    assert all(e["pid"] == REQUEST_PID for e in slices)
    assert set(e["name"] for e in slices) <= set(PHASES)


def test_points_sorted_by_key_and_rebased_onto_point_pids():
    rt = RequestTrace("sweep")
    rt.phase("simulate")
    rt.add_point("zz", [_span("late", 2000.0, 1000.0, tid=1)])
    rt.add_point("aa", [_span("early", 1000.0, 500.0)])
    doc = rt.to_chrome()
    assert doc["otherData"]["points"] == ["aa", "zz"]
    spans = {e["name"]: e for e in doc["traceEvents"] if e["ph"] == "X"
             and e.get("cat") != "serve"}
    # sim-ns timestamps become trace-us; pids follow sort order.
    assert spans["early"]["pid"] == POINT_PID_BASE
    assert spans["early"]["ts"] == 1.0 and spans["early"]["dur"] == 0.5
    assert spans["late"]["pid"] == POINT_PID_BASE + 1


def test_duplicate_point_keeps_first_trace_and_drops_host_spans():
    rt = RequestTrace("compare")
    rt.add_point("k", [_span("first", 0.0, 1.0),
                       _span("wall", 123.0, 1.0, pid=_HOST_PID)])
    rt.add_point("k", [_span("second", 0.0, 1.0)])
    assert rt.n_points == 1
    names = [e["name"] for e in rt.to_chrome()["traceEvents"]
             if e["ph"] == "X"]
    assert names == ["first"]  # host/wall-clock span excluded


def test_flow_arrows_pair_simulate_phase_with_first_point_span():
    rt = RequestTrace("sweep")
    rt.phase("parse")
    rt.phase("simulate")
    rt.add_point("k", [_span("a", 5000.0, 1000.0)])
    events = rt.to_chrome()["traceEvents"]
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert len(starts) == len(finishes) == 1
    assert starts[0]["id"] == finishes[0]["id"] == 1
    assert starts[0]["pid"] == REQUEST_PID
    assert starts[0]["ts"] == 1.5  # middle of the simulate slice
    assert finishes[0]["pid"] == POINT_PID_BASE
    assert finishes[0]["ts"] == 5.0 and finishes[0]["bp"] == "e"


def test_worker_flow_ids_are_namespaced_per_point():
    flow = ("s", "net.flow", "msg", _SIM_PID, 0, 100.0, 7, None)
    rt = RequestTrace("sweep")
    rt.add_point("a", [flow])
    rt.add_point("b", [flow])
    ids = sorted(e["id"] for e in rt.to_chrome()["traceEvents"]
                 if e["ph"] == "s" and e["cat"] == "net.flow")
    assert len(set(ids)) == 2  # same worker id, disjoint namespaces


def test_to_json_is_canonical():
    rt = RequestTrace("compare")
    rt.phase("parse")
    text = rt.to_json()
    assert json.loads(text)["otherData"]["kind"] == "compare"
    assert text == json.dumps(json.loads(text), sort_keys=True,
                              separators=(",", ":"))


# -- end to end: byte determinism -------------------------------------------

def test_stitched_trace_byte_identical_serial_vs_workers(tmp_path):
    """The acceptance bar: a traced job's Perfetto document must not
    depend on worker count.  Two fresh servers (so request/job counters
    match), separate caches (so both actually simulate), first request
    each."""
    job = {"kind": "sweep", "app": "bsp", "nodes": [2, 4],
           "patterns": ["quiet", "2.5pct@100Hz"], "seed": 31,
           "app_params": _PARAMS, "trace": True}
    docs = []
    for workers in (1, 2):
        cache = tmp_path / f"cache-w{workers}"
        with BackgroundServer(workers=workers, cache=str(cache)) as bg:
            events = list(ServeClient(*bg.address).submit(job))
        traces = [e for e in events if e.get("event") == "trace"]
        assert len(traces) == 1
        assert traces[0]["points"] == 4
        assert traces[0]["request_id"]
        # The trace event streams after every point but before stats.
        kinds = [e["event"] for e in events]
        assert kinds.index("trace") == len(kinds) - 2
        docs.append(json.dumps(traces[0]["trace"], sort_keys=True,
                               separators=(",", ":")))
    assert docs[0] == docs[1]
    doc = json.loads(docs[0])
    phase_names = [e["name"] for e in doc["traceEvents"]
                   if e.get("cat") == "serve"]
    assert phase_names == ["parse", "plan", "simulate", "stream"]
    assert len(doc["otherData"]["points"]) == 4
