"""CLI tests: argument parsing round-trips, error paths, and the
telemetry flag surface (``--metrics`` / ``--trace`` / ``stats``)."""

import io
import json

import pytest

from repro.cli import build_parser, main
from repro.harness import execution_policy


@pytest.fixture(autouse=True)
def _restore_execution_policy():
    """CLI commands mutate the process-wide policy; undo after each test."""
    policy = execution_policy()
    saved = (policy.workers, policy.cache)
    yield
    policy.workers, policy.cache = saved


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


# -- parsing round-trips -----------------------------------------------------

def test_run_flags_round_trip():
    args = build_parser().parse_args(
        ["run", "E4", "--scale", "full", "--workers", "3", "--cache", "d",
         "--trace", "t.json", "--trace-categories", "net,mpi", "--metrics"])
    assert args.command == "run"
    assert args.experiment == "E4"
    assert args.scale == "full"
    assert args.workers == 3
    assert args.cache == "d"
    assert args.trace == "t.json"
    assert args.trace_categories == "net,mpi"
    assert args.metrics is True


def test_run_defaults_leave_telemetry_off():
    args = build_parser().parse_args(["run", "E1"])
    assert args.scale == "small"
    assert args.workers == 1
    assert args.cache is None
    assert args.metrics is False
    assert args.trace is None
    assert args.trace_categories is None


def test_compare_and_sweep_fault_specs_parse():
    args = build_parser().parse_args(
        ["compare", "--app", "bsp", "--nodes", "8",
         "--faults", "drop=0.01,timeout=1ms"])
    assert args.faults == "drop=0.01,timeout=1ms"
    args = build_parser().parse_args(
        ["sweep", "--nodes", "2,4", "--patterns", "quiet,2.5pct@10Hz",
         "--faults", "dup=0.002"])
    assert args.nodes == "2,4"
    assert args.patterns == "quiet,2.5pct@10Hz"
    assert args.faults == "dup=0.002"


def test_topology_flags_round_trip():
    from repro.cli import _parse_collectives

    args = build_parser().parse_args(
        ["compare", "--nodes", "8",
         "--topology", "hier:2x2x2@fat-tree", "--shape", "2x2x2@fat-tree",
         "--collectives", "allreduce=two-level,barrier=two-level"])
    assert args.topology == "hier:2x2x2@fat-tree"
    assert args.shape == "2x2x2@fat-tree"
    assert _parse_collectives(args.collectives) == {
        "allreduce": "two-level", "barrier": "two-level"}
    args = build_parser().parse_args(["sweep", "--nodes", "2,4"])
    assert args.topology == "switch"
    assert args.shape is None
    assert _parse_collectives(args.collectives) is None


def test_stats_defaults_to_metrics_on():
    args = build_parser().parse_args(["stats", "--nodes", "4"])
    assert args.command == "stats"
    assert args.metrics is True
    assert args.sim_only is False
    assert args.trace is None


def test_unknown_command_and_missing_experiment_exit_nonzero():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["frobnicate"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run"])  # experiment id is required


# -- error paths (ReproError -> exit code 2 with a message) ------------------

def test_trace_categories_without_trace_is_an_error():
    code, text = run_cli(["compare", "--nodes", "2",
                          "--trace-categories", "net"])
    assert code == 2
    assert "error: --trace-categories requires --trace PATH" in text


def test_unknown_experiment_is_an_error():
    code, text = run_cli(["run", "E99"])
    assert code == 2
    assert "error:" in text and "unknown experiment" in text


def test_malformed_pattern_grammar_is_an_error():
    code, text = run_cli(["compare", "--nodes", "2", "--pattern", "bogus"])
    assert code == 2
    assert "error:" in text


def test_malformed_faults_spec_is_an_error():
    code, text = run_cli(["compare", "--nodes", "2", "--faults", "zorp=1"])
    assert code == 2
    assert "error:" in text


def test_malformed_collectives_spec_is_an_error():
    code, text = run_cli(["compare", "--nodes", "2",
                          "--collectives", "allreduce"])
    assert code == 2
    assert "error:" in text and "op=algorithm" in text


def test_unknown_collective_algorithm_is_an_error():
    code, text = run_cli(["compare", "--nodes", "2",
                          "--collectives", "allreduce=zorp"])
    assert code == 2
    assert "error:" in text


# -- commands end to end -----------------------------------------------------

def test_list_shows_catalogue():
    code, text = run_cli(["list"])
    assert code == 0
    assert "experiments: E1 E2" in text
    assert "workloads:" in text
    assert "patterns:" in text


def test_run_default_output_has_no_metrics_block():
    code, text = run_cli(["run", "E1"])
    assert code == 0
    assert "E1:" in text
    assert "metrics:" not in text


def test_run_metrics_flag_appends_metrics_block():
    code, text = run_cli(["run", "E15", "--metrics"])
    assert code == 0
    assert "metrics:" in text
    assert "harness.phase_s{phase=E15}" in text


def test_compare_trace_writes_chrome_json(tmp_path):
    path = tmp_path / "trace.json"
    code, text = run_cli(["compare", "--nodes", "4", "--trace", str(path),
                          "--trace-categories", "net,mpi"])
    assert code == 0
    assert f"events written to {path}" in text
    doc = json.loads(path.read_text())
    assert doc["traceEvents"]
    assert {e["ph"] for e in doc["traceEvents"]} >= {"M", "X"}


def test_stats_prints_registry():
    code, text = run_cli(["stats", "--nodes", "4", "--seed", "3"])
    assert code == 0
    assert "slowdown" in text
    assert "sim.events_processed:" in text
    assert "net.messages_total:" in text


def test_stats_sim_only_hides_host_metrics():
    code, text = run_cli(["stats", "--nodes", "4", "--sim-only"])
    assert code == 0
    assert "sim.events_processed:" in text
    assert "exec." not in text and "harness." not in text
