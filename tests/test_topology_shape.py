"""MachineShape and hierarchical-topology unit tests."""

import numpy as np
import pytest

from repro.core import MachineConfig
from repro.errors import ConfigError
from repro.net import (
    FatTreeTopology,
    HierarchicalTopology,
    MachineShape,
    SwitchTopology,
    TorusTopology,
)


# -- spec parsing ------------------------------------------------------------
def test_parse_spec_roundtrip():
    shape = MachineShape.parse("4x16x8@dragonfly")
    assert shape.cores_per_node == 4
    assert shape.nodes_per_switch == 16
    assert shape.switches_per_group == 8
    assert shape.kind == "dragonfly"
    assert shape.describe() == "4x16x8@dragonfly"
    # Idempotent on an instance; default kind is fat-tree.
    assert MachineShape.parse(shape) is shape
    assert MachineShape.parse("1x32x8").kind == "fat-tree"


@pytest.mark.parametrize("bad", ["32x8", "ax2x3", "1x2x3@mesh", "0x2x3"])
def test_parse_spec_rejects(bad):
    with pytest.raises(ConfigError):
        MachineShape.parse(bad)


def test_level_of_matches_vectorized():
    shape = MachineShape.parse("2x4x2@fat-tree")
    n = shape.ranks_per_group * 2  # two full groups = 32 ranks
    src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    vec = shape.level_of_vec(src.ravel(), dst.ravel()).reshape(n, n)
    for a in range(n):
        for b in range(n):
            assert vec[a, b] == shape.level_of(a, b)
    # Spot-check the level semantics.
    assert shape.level_of(0, 0) == 0    # same rank
    assert shape.level_of(0, 1) == 1    # same node (2 cores/node)
    assert shape.level_of(0, 2) == 2    # same switch
    assert shape.level_of(0, 8) == 3    # same group, other switch
    assert shape.level_of(0, 16) == 4   # cross-group


def test_collective_group_size_prefers_node_then_switch():
    assert MachineShape.parse("8x4x2").collective_group_size() == 8
    assert MachineShape.parse("1x32x8").collective_group_size() == 32


# -- hierarchical topology costs ---------------------------------------------
def test_hierarchical_extra_latency_per_level():
    topo = HierarchicalTopology(32, "2x4x2@fat-tree")
    lat = MachineShape.parse("2x4x2@fat-tree").level_latency_ns
    assert topo.extra_latency(0, 0) == 0
    assert topo.extra_latency(0, 1) == lat[0]
    assert topo.extra_latency(0, 2) == lat[1]
    assert topo.extra_latency(0, 8) == lat[2]
    assert topo.extra_latency(0, 16) == lat[3]


def test_hierarchical_extra_cost_vec_matches_scalar():
    topo = HierarchicalTopology(64, "2x4x2@dragonfly")
    rng = np.random.default_rng(7)
    src = rng.integers(0, 64, size=200)
    dst = rng.integers(0, 64, size=200)
    vec = topo.extra_cost_vec(src, dst, 8)
    for i in range(len(src)):
        assert vec[i] == topo.extra_cost(int(src[i]), int(dst[i]), 8)


# -- precomputed pair lookups -------------------------------------------------
def test_extra_matrix_cached_and_consistent():
    topo = TorusTopology((4, 4, 4), hop_latency_ns=50)
    mat = topo.extra_latency_matrix()
    assert mat is not None and mat.shape == (64, 64)
    assert topo.extra_latency_matrix() is mat  # built once, cached
    for a, b in ((0, 0), (0, 1), (3, 60), (17, 42)):
        assert mat[a, b] == topo.extra_latency(a, b)


def test_extra_matrix_skipped_when_zero_or_huge():
    assert SwitchTopology(64).extra_latency_matrix() is None  # zero extra
    big = HierarchicalTopology(131072, "32x64x64@fat-tree")
    assert big.extra_latency_matrix() is None  # beyond the dense cap
    # ... but vectorized per-pair lookups still work at that size.
    out = big.extra_cost_vec(np.array([0, 0]), np.array([1, 131071]))
    assert out.tolist() == [big.extra_cost(0, 1), big.extra_cost(0, 131071)]


def test_diameter_cached():
    topo = FatTreeTopology(32)
    d = topo.diameter_hops
    assert d >= 1
    assert topo.diameter_hops == d
    assert topo._diameter == d  # memoized, not recomputed


# -- MachineConfig integration -----------------------------------------------
def test_machine_config_hier_topology_spec():
    cfg = MachineConfig(n_nodes=16, topology="hier:1x4x2@fat-tree")
    topo = cfg.build_topology()
    assert isinstance(topo, HierarchicalTopology)
    assert cfg.resolved_shape() == MachineShape.parse("1x4x2@fat-tree")


def test_machine_config_shape_on_default_fabric():
    cfg = MachineConfig(n_nodes=16, shape="1x4x2@fat-tree")
    assert isinstance(cfg.build_topology(), HierarchicalTopology)
    with pytest.raises(ConfigError):
        MachineConfig(n_nodes=16, shape="not-a-shape")
