"""Correctness tests for every collective algorithm, across shapes."""

import numpy as np
import pytest

from repro.core import Machine, MachineConfig
from repro.errors import MPIError
from repro.mpi import collectives

SIZES = [1, 2, 3, 5, 8, 13, 16]


def _run_collective(n_nodes, program, **machine_kw):
    m = Machine(MachineConfig(n_nodes=n_nodes, **machine_kw))
    procs = m.launch(program)
    m.run_to_completion(procs)
    return [p.value for p in procs], m


# -- barrier ------------------------------------------------------------------

@pytest.mark.parametrize("alg", ["dissemination", "linear"])
@pytest.mark.parametrize("P", SIZES)
def test_barrier_synchronizes(alg, P):
    def prog(ctx):
        # Stagger arrivals so the barrier has real work to do.
        yield from ctx.compute(1000 * (ctx.rank + 1))
        yield from ctx.barrier(algorithm=alg)
        return ctx.env.now

    exits, _ = _run_collective(P, prog)
    # Nobody exits before the slowest rank arrived.
    assert min(exits) >= 1000 * P


# -- bcast ---------------------------------------------------------------------

@pytest.mark.parametrize("alg", ["binomial", "linear"])
@pytest.mark.parametrize("P", SIZES)
@pytest.mark.parametrize("root", [0, "last"])
def test_bcast_delivers_to_all(alg, P, root):
    root = P - 1 if root == "last" else 0

    def prog(ctx):
        data = "payload" if ctx.rank == root else None
        return (yield from ctx.bcast(size=128, root=root, payload=data,
                                     algorithm=alg))

    values, _ = _run_collective(P, prog)
    assert values == ["payload"] * P


# -- reduce ---------------------------------------------------------------------

@pytest.mark.parametrize("alg", ["binomial", "linear"])
@pytest.mark.parametrize("P", SIZES)
def test_reduce_sums_to_root(alg, P):
    def prog(ctx):
        return (yield from ctx.reduce(size=8, root=0, payload=ctx.rank + 1,
                                      algorithm=alg))

    values, _ = _run_collective(P, prog)
    assert values[0] == P * (P + 1) // 2
    assert all(v is None for v in values[1:])


def test_reduce_custom_op():
    def prog(ctx):
        return (yield from ctx.reduce(size=8, root=0, payload=ctx.rank + 1,
                                      op=max))

    values, _ = _run_collective(6, prog)
    assert values[0] == 6


# -- allreduce ---------------------------------------------------------------------

@pytest.mark.parametrize("alg", ["recursive-doubling", "reduce-bcast", "ring"])
@pytest.mark.parametrize("P", SIZES)
def test_allreduce_all_get_sum(alg, P):
    def prog(ctx):
        return (yield from ctx.allreduce(size=64, payload=ctx.rank + 1,
                                         algorithm=alg))

    values, _ = _run_collective(P, prog)
    assert values == [P * (P + 1) // 2] * P


def test_allreduce_ring_numpy_exact():
    P = 7

    def prog(ctx):
        x = np.arange(10, dtype=float) * (ctx.rank + 1)
        return (yield from ctx.allreduce(size=80, payload=x, algorithm="ring"))

    values, _ = _run_collective(P, prog)
    expected = np.arange(10, dtype=float) * (P * (P + 1) // 2)
    for v in values:
        assert np.allclose(v, expected)


def test_allreduce_numpy_recursive_doubling():
    P = 6

    def prog(ctx):
        x = np.ones(4) * (ctx.rank + 1)
        return (yield from ctx.allreduce(size=32, payload=x))

    values, _ = _run_collective(P, prog)
    for v in values:
        assert np.allclose(v, 21.0)


def test_allreduce_timing_grows_with_p():
    def timed(P):
        def prog(ctx):
            yield from ctx.allreduce(size=8)
            return ctx.env.now

        exits, _ = _run_collective(P, prog)
        return max(exits)

    assert timed(4) < timed(16) < timed(64)


# -- gather / scatter ------------------------------------------------------------------

@pytest.mark.parametrize("alg", ["binomial", "linear"])
@pytest.mark.parametrize("P", SIZES)
def test_gather_rank_order(alg, P):
    def prog(ctx):
        return (yield from ctx.gather(size=16, root=0, payload=ctx.rank * 7,
                                      algorithm=alg))

    values, _ = _run_collective(P, prog)
    assert values[0] == [r * 7 for r in range(P)]
    assert all(v is None for v in values[1:])


@pytest.mark.parametrize("alg", ["binomial", "linear"])
@pytest.mark.parametrize("P", SIZES)
@pytest.mark.parametrize("root", [0, "mid"])
def test_scatter_each_gets_own_block(alg, P, root):
    root = P // 2 if root == "mid" else 0

    def prog(ctx):
        payloads = ([f"block{i}" for i in range(ctx.size)]
                    if ctx.rank == root else None)
        return (yield from ctx.scatter(size=16, root=root, payloads=payloads,
                                       algorithm=alg))

    values, _ = _run_collective(P, prog)
    assert values == [f"block{r}" for r in range(P)]


def test_scatter_payload_length_checked():
    def prog(ctx):
        return (yield from ctx.scatter(size=8, root=0, payloads=[1, 2, 3]))

    m = Machine(MachineConfig(n_nodes=4))
    m.launch(prog)
    with pytest.raises(MPIError):
        m.run()


# -- allgather -----------------------------------------------------------------------------

@pytest.mark.parametrize("alg", ["ring", "gather-bcast"])
@pytest.mark.parametrize("P", SIZES)
def test_allgather_everyone_gets_all(alg, P):
    def prog(ctx):
        return (yield from ctx.allgather(size=16, payload=ctx.rank + 50,
                                         algorithm=alg))

    values, _ = _run_collective(P, prog)
    expected = [r + 50 for r in range(P)]
    assert values == [expected] * P


# -- alltoall ---------------------------------------------------------------------------------

@pytest.mark.parametrize("alg", ["pairwise", "linear"])
@pytest.mark.parametrize("P", SIZES)
def test_alltoall_personalized(alg, P):
    def prog(ctx):
        outbound = [ctx.rank * 100 + dst for dst in range(ctx.size)]
        return (yield from ctx.alltoall(size=16, payloads=outbound,
                                        algorithm=alg))

    values, _ = _run_collective(P, prog)
    for r, got in enumerate(values):
        assert got == [src * 100 + r for src in range(P)]


def test_alltoall_payload_length_checked():
    def prog(ctx):
        return (yield from ctx.alltoall(size=8, payloads=[1]))

    m = Machine(MachineConfig(n_nodes=4))
    m.launch(prog)
    with pytest.raises(MPIError):
        m.run()


# -- registry / dispatch ----------------------------------------------------------------------

def test_registry_lists_algorithms():
    assert "recursive-doubling" in collectives.algorithms_for("allreduce")
    assert "ring" in collectives.algorithms_for("allreduce")
    with pytest.raises(MPIError):
        collectives.algorithms_for("transmogrify")


def test_unknown_algorithm_rejected():
    def prog(ctx):
        return (yield from ctx.allreduce(size=8, algorithm="quantum"))

    m = Machine(MachineConfig(n_nodes=2))
    m.launch(prog)
    with pytest.raises(MPIError):
        m.run()


def test_back_to_back_collectives_do_not_cross():
    """Consecutive collectives on one comm use distinct tag blocks."""
    P = 8

    def prog(ctx):
        results = []
        for i in range(5):
            results.append((yield from ctx.allreduce(size=8, payload=i + ctx.rank)))
        yield from ctx.barrier()
        results.append((yield from ctx.bcast(size=8, root=0,
                                             payload=("x" if ctx.rank == 0 else None))))
        return results

    values, _ = _run_collective(P, prog)
    base = sum(range(P))
    for got in values:
        assert got == [base + i * P for i in range(5)] + ["x"]


def test_collectives_on_subcommunicator():
    m = Machine(MachineConfig(n_nodes=6))
    comm = m.mpi.create_comm([1, 3, 5])

    def prog(ctx):
        return (yield from ctx.allreduce(size=8, payload=ctx.rank))

    procs = m.launch(prog, comm=comm)
    m.run_to_completion(procs)
    assert [p.value for p in procs] == [3, 3, 3]
