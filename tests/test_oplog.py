"""Tests for the structured operation log (:mod:`repro.obs.oplog`)."""

import asyncio
import json

import pytest

from repro.errors import ConfigError
from repro.obs import oplog


@pytest.fixture(autouse=True)
def _fresh_oplog():
    oplog.reset()
    yield
    oplog.reset()


# -- ring semantics ---------------------------------------------------------

def test_emit_stamps_sequence_level_and_event():
    log = oplog.OpLog()
    a = log.emit("request.start", route="jobs")
    b = log.emit("request.end", level="debug", status=200)
    assert a["seq"] == 1 and b["seq"] == 2
    assert a["level"] == "info" and b["level"] == "debug"
    assert a["event"] == "request.start" and a["route"] == "jobs"
    assert isinstance(a["ts"], float)


def test_ring_caps_and_counts_drops():
    log = oplog.OpLog(cap=3)
    for i in range(5):
        log.emit("e", i=i)
    assert len(log) == 3
    assert log.total == 5 and log.dropped == 2
    assert [d["i"] for d in log.events()] == [2, 3, 4]
    # seq keeps climbing across drops: total order survives eviction.
    assert [d["seq"] for d in log.events()] == [3, 4, 5]


def test_bad_cap_and_bad_level_rejected():
    with pytest.raises(ConfigError):
        oplog.OpLog(cap=0)
    log = oplog.OpLog()
    with pytest.raises(ConfigError):
        log.emit("e", level="fatal")
    with pytest.raises(ConfigError):
        log.events(level="loud")


def test_events_level_is_a_floor():
    log = oplog.OpLog()
    log.emit("a", level="debug")
    log.emit("b", level="info")
    log.emit("c", level="warning")
    log.emit("d", level="error")
    assert [d["event"] for d in log.events(level="warning")] == ["c", "d"]
    assert len(log.events(level="debug")) == 4


def test_events_name_filter_exact_or_dotted_prefix():
    log = oplog.OpLog()
    log.emit("request.start")
    log.emit("request.end")
    log.emit("requests_other")  # prefix must respect the dot boundary
    log.emit("job.start")
    assert [d["event"] for d in log.events(event="request")] == \
        ["request.start", "request.end"]
    assert [d["event"] for d in log.events(event="request.end")] == \
        ["request.end"]
    assert log.events(event="requests") == []


def test_events_since_seq_and_newest_limit():
    log = oplog.OpLog()
    for i in range(10):
        log.emit("e", i=i)
    tail = log.events(since_seq=7)
    assert [d["i"] for d in tail] == [7, 8, 9]
    newest = log.events(limit=2)
    assert [d["i"] for d in newest] == [8, 9]


# -- correlation context ----------------------------------------------------

def test_context_fields_merge_and_nest():
    log = oplog.OpLog()
    with oplog.context(request_id="r-000001"):
        with oplog.context(job_id="j-000001"):
            doc = log.emit("job.start")
    assert doc["request_id"] == "r-000001"
    assert doc["job_id"] == "j-000001"
    assert oplog.current_context() == {}  # scopes unwound


def test_explicit_field_wins_over_context():
    log = oplog.OpLog()
    with oplog.context(request_id="r-000001"):
        doc = log.emit("e", request_id="r-override")
    assert doc["request_id"] == "r-override"


def test_asyncio_tasks_inherit_the_enclosing_context():
    log = oplog.OpLog()

    async def worker():
        return log.emit("point.done")

    async def main():
        with oplog.context(request_id="r-000007"):
            task = asyncio.ensure_future(worker())
        # The context block has exited by the time the task runs; the
        # task still carries the ids it was created under.
        return await task

    doc = asyncio.run(main())
    assert doc["request_id"] == "r-000007"


# -- file sink & global plumbing --------------------------------------------

def test_file_sink_appends_ndjson(tmp_path):
    path = tmp_path / "oplog.ndjson"
    log = oplog.OpLog(path=str(path))
    with oplog.context(request_id="r-000001"):
        log.emit("request.start", route="jobs")
    log.emit("request.end")
    log.close()
    lines = path.read_text().splitlines()
    assert len(lines) == 2
    docs = [json.loads(line) for line in lines]
    assert docs[0]["request_id"] == "r-000001"
    assert docs[1]["event"] == "request.end"


def test_configure_swaps_the_global_log(tmp_path):
    path = tmp_path / "cli.ndjson"
    oplog.log("before")  # lands in the default ring only
    replaced = oplog.configure(path=str(path), cap=16)
    assert oplog.get() is replaced and replaced.cap == 16
    oplog.log("after", request_id="r-000001")
    assert [d["event"] for d in oplog.get().events()] == ["after"]
    assert json.loads(path.read_text())["event"] == "after"
    oplog.reset()
    assert oplog.get().path is None
