"""Async/concurrency rule pack tests (ASYNC001–ASYNC005).

One positive (hazard caught) and one negative (sanctioned pattern
silent) per rule, mirroring the real serve/obs code: the event loop,
the BackgroundServer thread handshake, and the oplog contextvars
discipline.  These rules apply in every scope, so the fixtures use a
host path to keep the DET rules out of the assertions.
"""

import textwrap

from repro.lint.engine import lint_source


def findings(src, *, path="repro/serve/fixture.py", scope="host"):
    found, _ = lint_source(textwrap.dedent(src), path, scope=scope)
    return found


def rule_ids(src, **kw):
    return [f.rule for f in findings(src, **kw)]


# -- ASYNC001: blocking call in a coroutine ---------------------------------

def test_async001_flags_sleep_subprocess_and_file_io():
    src = """
        import time
        import subprocess

        async def handler(path):
            time.sleep(0.1)
            subprocess.run(["ls"])
            return path.read_text()
    """
    assert rule_ids(src) == ["ASYNC001"] * 3


def test_async001_names_the_coroutine_and_suggests_async_sleep():
    src = """
        import time

        async def poll():
            time.sleep(1)
    """
    (f,) = findings(src)
    assert "`poll`" in f.message
    assert "asyncio.sleep" in f.message


def test_async001_silent_on_async_sleep_and_sync_functions():
    src = """
        import asyncio
        import time

        async def poll():
            await asyncio.sleep(1)
            await asyncio.to_thread(expensive)

        def expensive():
            time.sleep(1)  # fine: runs on a worker thread
    """
    assert rule_ids(src) == []


def test_async001_applies_in_sim_scope_too():
    src = """
        import subprocess

        async def spawn():
            subprocess.call(["true"])
    """
    assert "ASYNC001" in rule_ids(src, path="repro/sim/fixture.py",
                                  scope="sim")


# -- ASYNC002: coroutine never awaited --------------------------------------

def test_async002_flags_bare_coroutine_calls():
    src = """
        async def refresh():
            pass

        def kick():
            refresh()

        class Poller:
            async def tick(self):
                pass

            def run_once(self):
                self.tick()
    """
    assert rule_ids(src) == ["ASYNC002", "ASYNC002"]


def test_async002_silent_when_awaited_stored_or_run():
    src = """
        import asyncio

        async def refresh():
            pass

        async def main():
            await refresh()
            task = asyncio.create_task(refresh())
            await task

        def sync_entry():
            asyncio.run(refresh())
    """
    assert rule_ids(src) == []


# -- ASYNC003: dropped task handle ------------------------------------------

def test_async003_flags_fire_and_forget_create_task():
    src = """
        import asyncio

        async def serve(loop):
            asyncio.create_task(work())
            loop.create_task(work())

        async def work():
            pass
    """
    found = findings(src)
    assert [f.rule for f in found] == ["ASYNC003", "ASYNC003"]
    assert all(f.severity == "warning" for f in found)


def test_async003_silent_when_handle_is_kept():
    src = """
        import asyncio

        async def serve(tasks):
            t = asyncio.create_task(work())
            tasks.add(t)
            t.add_done_callback(tasks.discard)

        async def work():
            pass
    """
    assert rule_ids(src) == []


# -- ASYNC004: thread-shared state without a lock ---------------------------

UNLOCKED_SERVER = """
    import threading

    class Server:
        def __init__(self):
            self.port = None
            self._thread = threading.Thread(target=self._main)

        def _main(self):
            self.port = 8080

        def address(self):
            return f"127.0.0.1:{self.port}"
"""


def test_async004_flags_unlocked_thread_handshake():
    (f,) = findings(UNLOCKED_SERVER)
    assert f.rule == "ASYNC004"
    assert "self.port" in f.message
    assert "_main" in f.message and "address" in f.message


def test_async004_silent_when_both_sides_hold_the_lock():
    src = """
        import threading

        class Server:
            def __init__(self):
                self.port = None
                self._lock = threading.Lock()
                self._thread = threading.Thread(target=self._main)

            def _main(self):
                with self._lock:
                    self.port = 8080

            def address(self):
                with self._lock:
                    return f"127.0.0.1:{self.port}"
    """
    assert rule_ids(src) == []


def test_async004_exempts_sync_primitives_and_init_writes():
    src = """
        import queue
        import threading

        class Sampler:
            def __init__(self):
                self.out = queue.Queue()
                self.stop = threading.Event()
                self._thread = threading.Thread(target=self._main)

            def _main(self):
                while not self.stop.is_set():
                    self.out.put(1)

            def drain(self):
                return self.out.get_nowait()
    """
    assert rule_ids(src) == []


def test_async004_follows_self_calls_into_the_thread_context():
    src = """
        import threading

        class Worker:
            def __init__(self):
                self.result = None
                self._thread = threading.Thread(target=self._main)

            def _main(self):
                self._step()

            def _step(self):
                self.result = 42

            def collect(self):
                return self.result
    """
    assert rule_ids(src) == ["ASYNC004"]


def test_async004_flags_global_shared_between_thread_and_coroutine():
    src = """
        import threading

        SAMPLES = []

        def sampler():
            SAMPLES.append(1)

        def start():
            threading.Thread(target=sampler).start()

        async def report():
            return len(SAMPLES)
    """
    assert rule_ids(src) == ["ASYNC004"]


# -- ASYNC005: ContextVar.set without reset ---------------------------------

def test_async005_flags_dropped_token_and_missing_finally():
    src = """
        import contextvars

        REQ = contextvars.ContextVar("req")

        def enter(rid):
            REQ.set(rid)

        def enter_keeping_token(rid):
            token = REQ.set(rid)
            do_work()
            REQ.reset(token)  # not in a finally: skipped on raise
    """
    found = findings(src)
    assert [f.rule for f in found] == ["ASYNC005", "ASYNC005"]
    assert all(f.severity == "warning" for f in found)


def test_async005_silent_on_the_try_finally_discipline():
    src = """
        import contextvars

        REQ = contextvars.ContextVar("req")

        def scoped(rid):
            token = REQ.set(rid)
            try:
                do_work()
            finally:
                REQ.reset(token)
    """
    assert rule_ids(src) == []
