"""Determinism guarantees of the telemetry layer.

The observability layer (:mod:`repro.obs`) must be a strict no-op for
results: the same seed gives the same report bytes whether telemetry is
off, metrics are on, or a tracer is recording — and the *sim-scoped*
metrics themselves are as reproducible as the simulation.  Three axes:

a. two consecutive runs with the same seed;
b. serial execution vs ``--workers N`` process fan-out;
c. tracing on vs tracing off.
"""

import json

import pytest

from repro import obs
from repro.core import ExperimentConfig, sweep_records
from repro.core import run_experiment as core_run_experiment
from repro.core.results import ComparisonResult
from repro.harness import run_experiment
from repro.parallel import SweepExecutor

#: Fast experiments used as report-byte probes (sub-second at small
#: scale).  E1 drives nodes directly (no machine-level harvest); E15 is
#: the deep probe that exercises the full metrics path — sim, net, mpi
#: and faults counters.
FAST_EXPERIMENTS = ("E1", "E15")
DEEP_PROBE = "E15"

BSP_SMALL = {"work_ns": 500_000, "iterations": 10}


def _run(experiment_id, *, metrics=False, trace=False):
    """One experiment run under a fresh telemetry configuration.

    Returns ``(report_text, sim_metrics_snapshot)``; telemetry is fully
    reset afterwards so back-to-back calls are independent.
    """
    obs.disable()
    if metrics or trace:
        obs.configure(metrics=True, trace=bool(trace) or None)
    try:
        report = run_experiment(experiment_id, "small")
        text = report.render()
        snap = obs.registry().snapshot(sim_only=True)
    finally:
        obs.disable()
    return text, snap


# -- axis (a): run-to-run --------------------------------------------------

def test_same_seed_same_report_and_metrics():
    first_text, first_snap = _run(DEEP_PROBE, metrics=True)
    second_text, second_snap = _run(DEEP_PROBE, metrics=True)
    assert first_text == second_text
    assert first_snap == second_snap
    assert first_snap["sim.runs"] > 0  # the probe actually collected


@pytest.mark.parametrize("experiment_id", FAST_EXPERIMENTS)
def test_telemetry_is_invisible_in_default_report(experiment_id):
    off_text, off_snap = _run(experiment_id, metrics=False)
    on_text, _on_snap = _run(experiment_id, metrics=True)
    assert off_text == on_text  # byte-identical: telemetry never leaks
    assert off_snap == {}  # and nothing is collected while disabled


# -- axis (b): serial vs worker processes ----------------------------------

def test_serial_and_parallel_sweeps_agree_with_metrics_on():
    base = ExperimentConfig(app="bsp", seed=7, app_params=BSP_SMALL)
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])

    obs.disable()
    obs.configure(metrics=True)
    try:
        serial = sweep_records(base, workers=1, **kwargs)
        serial_snap = obs.registry().snapshot()
        obs.disable()
        obs.configure(metrics=True)
        parallel = sweep_records(base, workers=2, **kwargs)
        parallel_snap = obs.registry().snapshot()
    finally:
        obs.disable()

    blob = lambda records: json.dumps(records, sort_keys=True)  # noqa: E731
    assert blob(serial) == blob(parallel)
    # Parent-side executor accounting is identical either way.  (Worker
    # processes keep their own sim-scope counters — see the fan-out note
    # in repro/obs/runtime.py — so only exec.* is comparable here.)
    for key in ("exec.points_total", "exec.cache_hits", "exec.cache_misses",
                "exec.point_failures"):
        assert serial_snap[key] == parallel_snap[key], key
    # 2x2 grid: the quiet column doubles as the shared baselines.
    assert serial_snap["exec.points_total"] == 4


# -- det_check: order-sensitive scheduling checksum -------------------------

def test_det_check_absent_by_default():
    obs.disable()
    cfg = ExperimentConfig(app="bsp", nodes=2, seed=3, app_params=BSP_SMALL)
    result = core_run_experiment(cfg)
    assert "det_check" not in result.meta


def test_det_check_serial_equals_workers():
    """obs.configure(det_check=True): every run carries an order-
    sensitive checksum of its scheduled (time, priority, seq) tuples,
    and serial vs --workers fan-out produces identical checksums —
    runtime evidence the event orderings themselves matched, not just
    the derived report numbers."""
    base = ExperimentConfig(app="bsp", seed=7, app_params=BSP_SMALL)
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])

    def checksums(workers):
        obs.disable()
        obs.configure(det_check=True)
        try:
            results = SweepExecutor(workers=workers).run_sweep(base, **kwargs)
            out = {}
            for key, res in results.items():
                if isinstance(res, ComparisonResult):
                    out[key] = (res.quiet.meta["det_check"],
                                res.noisy.meta["det_check"])
                else:
                    out[key] = res.meta["det_check"]
        finally:
            obs.disable()
        return out

    serial, pooled = checksums(1), checksums(2)
    assert serial == pooled
    flat = [v for entry in serial.values()
            for v in (entry if isinstance(entry, tuple) else (entry,))]
    assert flat and all(isinstance(v, int) and v != 0 for v in flat)


def test_det_check_distinguishes_different_schedules():
    obs.disable()
    obs.configure(det_check=True)
    try:
        quiet = core_run_experiment(
            ExperimentConfig(app="bsp", nodes=2, seed=3,
                             app_params=BSP_SMALL))
        # 1000Hz so the pattern actually strikes within the ~5ms run.
        noisy = core_run_experiment(
            ExperimentConfig(app="bsp", nodes=2, seed=3,
                             noise_pattern="2.5pct@1000Hz",
                             app_params=BSP_SMALL))
    finally:
        obs.disable()
    assert quiet.meta["det_check"] != noisy.meta["det_check"]


# -- axis (c): tracing on vs off -------------------------------------------

def test_tracing_does_not_perturb_results_or_metrics():
    plain_text, plain_snap = _run(DEEP_PROBE, metrics=True)
    traced_text, traced_snap = _run(DEEP_PROBE, metrics=True, trace=True)
    assert plain_text == traced_text
    assert plain_snap == traced_snap


def test_trace_output_itself_is_deterministic(tmp_path):
    """Same seed, same trace: sim-scoped span streams are replayable."""
    docs = []
    for i in range(2):
        obs.disable()
        path = tmp_path / f"t{i}.json"
        obs.configure(trace=str(path), trace_categories="net,mpi")
        try:
            run_experiment(DEEP_PROBE, "small")
            obs.write_trace()
        finally:
            obs.disable()
        doc = json.loads(path.read_text())
        # Host-scoped fields (wall timestamps) are nondeterministic;
        # strip them and compare the sim-time event stream.
        docs.append([e for e in doc["traceEvents"]
                     if e.get("pid") == 1 and e["ph"] != "M"])
    assert docs[0] == docs[1]
    assert docs[0]  # non-empty stream
