"""Tests for the experiment server: planning, dedup, determinism.

The heavyweight properties the service must hold:

* served records are byte-identical to the ``repro sweep`` CLI path
  (serial and ``--workers``) for equal configs;
* N identical concurrent submissions cause exactly one simulation per
  distinct point (in-flight dedup);
* the sharded on-disk cache is shared between server and CLI.
"""

import asyncio
import json

import pytest

from repro.core import ExperimentConfig, run_with_baseline, sweep_records
from repro.errors import ConfigError
from repro.serve import (
    BackgroundServer,
    InflightRegistry,
    ServeClient,
    ServeError,
    job_records,
    parse_job,
    submit_async,
)

#: Small enough that a point is tens of milliseconds.
_PARAMS = {"work_ns": 500_000, "iterations": 10}


def _blob(records):
    return json.dumps(records, sort_keys=True).encode()


# -- planner ----------------------------------------------------------------

def test_parse_job_rejects_garbage():
    with pytest.raises(ConfigError):
        parse_job(["not", "an", "object"])
    with pytest.raises(ConfigError):
        parse_job({"kind": "destroy"})
    with pytest.raises(ConfigError):
        parse_job({"kind": "sweep", "typo_field": 1})
    with pytest.raises(ConfigError):
        parse_job({"kind": "compare", "pattern": "quiet"})
    with pytest.raises(ConfigError):
        parse_job({"kind": "sweep", "nodes": []})
    with pytest.raises(ConfigError):
        parse_job({"kind": "sweep", "nodes": [0]})
    with pytest.raises(ConfigError):
        parse_job({"kind": "sweep", "patterns": [""]})
    with pytest.raises(ConfigError):
        parse_job({"kind": "sweep", "patterns": ["no-such-grammar!!"]})
    with pytest.raises(ConfigError):
        parse_job({"kind": "sweep", "collectives": {"allreduce": 3}})


def test_parse_job_compare_and_sweep_shapes():
    cmp_job = parse_job({"kind": "compare", "nodes": 8,
                         "pattern": "2.5pct@100Hz", "seed": 3})
    assert cmp_job.nodes == (8,)
    assert cmp_job.patterns == ("2.5pct@100Hz",)
    assert cmp_job.base.seed == 3

    swp = parse_job({"kind": "sweep", "nodes": [4, 8],
                     "patterns": ["quiet", "2.5pct@100Hz"]})
    keys = [p.key for p in swp.points()]
    # Quiet baselines first (deduplicated), then noisy points.
    assert keys == [("quiet", 4), ("quiet", 8),
                    ("noisy", 4, "2.5pct@100Hz"),
                    ("noisy", 8, "2.5pct@100Hz")]


def test_job_points_share_quiet_baselines():
    swp = parse_job({"kind": "sweep", "nodes": [4, 4, 4],
                     "patterns": ["2.5pct@10Hz", "2.5pct@100Hz"]})
    quiet = [p for p in swp.points() if p.key[0] == "quiet"]
    assert len(quiet) == 1


def test_job_assemble_matches_sweep_records_shape():
    job = parse_job({"kind": "sweep", "app": "bsp", "nodes": [2],
                     "patterns": ["quiet", "2.5pct@100Hz"], "seed": 2,
                     "app_params": _PARAMS})
    from repro.core import run_experiment

    points = {p.key: run_experiment(p.config) for p in job.points()}
    records, errors = job.assemble(points)
    assert errors == []
    expected = sweep_records(
        ExperimentConfig(app="bsp", seed=2, app_params=_PARAMS),
        nodes=[2], patterns=["quiet", "2.5pct@100Hz"])
    assert _blob(records) == _blob(expected)


def test_job_assemble_reports_missing_baseline():
    job = parse_job({"kind": "sweep", "nodes": [2],
                     "patterns": ["2.5pct@100Hz"]})
    noisy_key = ("noisy", 2, "2.5pct@100Hz")
    from repro.core import run_experiment

    noisy = run_experiment(
        next(p for p in job.points() if p.key == noisy_key).config)
    records, errors = job.assemble({noisy_key: noisy})
    assert records == []
    assert errors and errors[0]["kind"] == "MissingBaseline"


# -- in-flight registry -----------------------------------------------------

def test_inflight_registry_dedups_and_retires():
    async def main():
        reg = InflightRegistry()
        calls = []

        async def work():
            calls.append(1)
            await asyncio.sleep(0)
            return "r"

        assert reg.join("k") is None
        task = reg.register("k", work)
        assert reg.join("k") is task and reg.joined == 1
        assert await asyncio.shield(task) == "r"
        await asyncio.sleep(0)  # let the done callback retire the key
        assert len(reg) == 0 and reg.join("k") is None
        assert calls == [1]

    asyncio.run(main())


def test_inflight_registry_failure_not_pinned():
    async def main():
        reg = InflightRegistry()

        async def boom():
            raise RuntimeError("sim failed")

        task = reg.register("k", boom)
        with pytest.raises(RuntimeError):
            await asyncio.shield(task)
        await asyncio.sleep(0)
        assert reg.join("k") is None  # next request starts fresh

    asyncio.run(main())


# -- the server -------------------------------------------------------------

@pytest.fixture(scope="module")
def server(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("serve-cache")
    with BackgroundServer(workers=2, cache=str(cache_dir)) as bg:
        yield bg


def _sweep_job(**over):
    job = {"kind": "sweep", "app": "bsp", "nodes": [2, 4],
           "patterns": ["quiet", "2.5pct@100Hz"], "seed": 2,
           "app_params": _PARAMS}
    job.update(over)
    return job


def test_health_and_metrics(server):
    client = ServeClient(*server.address)
    health = client.health()
    assert health["ok"] and health["workers"] == 2
    doc = client.metrics()
    assert "serve" in doc and "cache" in doc
    assert doc["serve"]["workers"] == 2


def test_unknown_route_404(server):
    client = ServeClient(*server.address)
    with pytest.raises(ServeError, match="404"):
        client._get_json("/nope")


def test_bad_job_is_a_400_not_a_crash(server):
    client = ServeClient(*server.address)
    with pytest.raises(ServeError, match="rejected"):
        list(client.submit({"kind": "destroy"}))
    with pytest.raises(ServeError, match="rejected"):
        list(client.submit({"kind": "sweep", "patterns": ["zzz!"]}))
    assert client.health()["ok"]  # server survived


def test_served_sweep_byte_identical_to_cli(server):
    client = ServeClient(*server.address)
    records, stats = client.records(_sweep_job(seed=21))
    assert stats["errors"] == 0
    base = ExperimentConfig(app="bsp", seed=21, app_params=_PARAMS)
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])
    assert _blob(records) == _blob(sweep_records(base, workers=1, **kwargs))
    assert _blob(records) == _blob(sweep_records(base, workers=2, **kwargs))


def test_served_compare_matches_run_with_baseline(server):
    client = ServeClient(*server.address)
    job = {"kind": "compare", "app": "bsp", "nodes": 4,
           "pattern": "2.5pct@100Hz", "seed": 22, "app_params": _PARAMS}
    records, stats = client.records(job)
    assert len(records) == 1 and stats["errors"] == 0
    cmp = run_with_baseline(ExperimentConfig(
        app="bsp", nodes=4, noise_pattern="2.5pct@100Hz", seed=22,
        app_params=_PARAMS))
    expected = cmp.as_dict()
    expected.setdefault("pattern", "2.5pct@100Hz")
    assert _blob(records) == _blob([expected])


def test_stream_has_point_record_stats_events(server):
    client = ServeClient(*server.address)
    events = list(client.submit(_sweep_job(seed=23)))
    kinds = [e["event"] for e in events]
    assert kinds[-1] == "stats"
    assert kinds.count("point") == 4
    assert kinds.count("record") == 4
    outcomes = {e["outcome"] for e in events if e["event"] == "point"}
    assert outcomes <= {"simulated", "cached", "deduped"}
    # Every record cell appears exactly once.
    cells = [(e["record"]["nodes"], e["record"]["pattern"])
             for e in events if e["event"] == "record"]
    assert sorted(cells) == [(2, "2.5pct@100Hz"), (2, "quiet"),
                             (4, "2.5pct@100Hz"), (4, "quiet")]


def test_repeat_submission_served_from_cache(server):
    client = ServeClient(*server.address)
    _records, first = client.records(_sweep_job(seed=24))
    assert first["simulated"] == 4
    records, again = client.records(_sweep_job(seed=24))
    assert again["simulated"] == 0
    assert again["cached"] == 4
    assert _blob(records) == _blob(_records)


def test_identical_concurrent_jobs_simulate_once(server):
    """The headline dedup property: N identical in-flight jobs ->
    exactly one simulation per distinct point."""
    client = ServeClient(*server.address)
    before = client.metrics()["serve"]
    job = {"kind": "compare", "app": "bsp", "nodes": 4,
           "pattern": "2.5pct@10Hz", "seed": 25, "app_params": _PARAMS}

    async def burst():
        host, port = server.address
        return await asyncio.gather(
            *[submit_async(host, port, job) for _ in range(8)])

    results = asyncio.run(burst())
    blobs = set()
    for events in results:
        records, stats = job_records(events)
        assert stats["errors"] == 0
        blobs.add(_blob(records))
    assert len(blobs) == 1  # every subscriber saw the identical result

    after = client.metrics()["serve"]
    simulated = after["points_simulated"] - before["points_simulated"]
    deduped = after["points_deduped"] - before["points_deduped"]
    cached = after["points_cached"] - before["points_cached"]
    # 8 jobs x 2 points each = 16 consumptions; exactly 2 simulations
    # (noisy + its quiet baseline), everything else dedup/cache.
    assert simulated == 2
    assert deduped + cached == 14


def test_cache_shared_between_cli_and_server(server, tmp_path):
    """A sweep the CLI ran into the shared directory is served without
    simulating; and vice versa the server's points warm the CLI."""
    from repro.parallel import SweepExecutor

    # The server's cache dir, already warmed by earlier tests:
    cache = server.server.executor.cache
    base = ExperimentConfig(app="bsp", seed=24, app_params=_PARAMS)
    ex = SweepExecutor(workers=1, cache=cache)
    ex.run_sweep(base, nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])
    stats = ex.last_stats
    assert stats.quiet_simulated == 0 and stats.noisy_simulated == 0


def test_point_failure_streams_error_event(server):
    client = ServeClient(*server.address)
    job = {"kind": "compare", "app": "bsp", "nodes": 4,
           "pattern": "2.5pct@100Hz", "seed": 26,
           "app_params": {"work_ns": -5}}
    events = list(client.submit(job))
    kinds = [e["event"] for e in events]
    assert "error" in kinds
    assert events[-1]["event"] == "stats"
    assert events[-1]["errors"] >= 1
    assert client.health()["ok"]


def test_cli_submit_against_server(server):
    from repro.cli import main
    import io

    host, port = server.address
    out = io.StringIO()
    rc = main(["submit", "--host", host, "--port", str(port),
               "--app", "bsp", "--nodes", "2,4",
               "--patterns", "quiet,2.5pct@100Hz", "--seed", "2"],
              out=out)
    text = out.getvalue()
    assert rc == 0
    assert "sweep: bsp" in text
    assert "server:" in text


def test_cli_submit_connection_refused():
    from repro.cli import main
    import io

    out = io.StringIO()
    rc = main(["submit", "--port", "1", "--app", "bsp"], out=out)
    assert rc == 2
    assert "cannot reach server" in out.getvalue()


# -- observability plane ----------------------------------------------------

def test_metrics_json_backward_compatible_shape(server):
    """PR-7 clients keep working: `/metrics` defaults to JSON with the
    `serve` / `cache` / `version` keys; `registry` is now always
    present (the server owns a host-scope registry even when the
    global telemetry switchboard is off)."""
    client = ServeClient(*server.address)
    doc = client.metrics()
    assert set(doc) >= {"serve", "cache", "version", "registry"}
    serve = doc["serve"]
    for key in ("requests_total", "points_simulated", "points_cached",
                "points_deduped", "point_errors", "workers", "inflight"):
        assert key in serve
    assert any(k.startswith("serve.http_requests_total")
               for k in doc["registry"])


def test_metrics_prometheus_exposition_validates(server):
    from repro.obs import prom

    client = ServeClient(*server.address)
    client.records(_sweep_job(seed=27))
    text = client.metrics_text()
    samples, types = prom.validate(text)
    names = {s.name for s in samples}
    assert "repro_serve_requests_total" in names
    assert "repro_serve_points_simulated" in names
    assert types["repro_serve_http_request_seconds"] == "histogram"
    # Content negotiation: an Accept header is enough, no query param.
    import http.client

    conn = http.client.HTTPConnection(*server.address, timeout=30)
    try:
        conn.request("GET", "/metrics", headers={"Accept": "text/plain"})
        resp = conn.getresponse()
        assert resp.status == 200
        assert "version=0.0.4" in resp.getheader("Content-Type", "")
        prom.validate(resp.read().decode())
    finally:
        conn.close()


def test_metrics_window_reports_rolling_rates(server):
    client = ServeClient(*server.address)
    client.records(_sweep_job(seed=28))
    doc = client.metrics(window=30)
    win = doc["window"]
    assert win["window_s"] > 0 and win["samples"] >= 1
    assert win["requests"] >= 1 and win["req_per_s"] > 0
    assert 0.0 <= win["error_rate"] <= 1.0
    with pytest.raises(ServeError, match="400"):
        client._get_json("/metrics?window=bogus")


def test_every_request_logged_with_request_id(server):
    client = ServeClient(*server.address)
    client.records(_sweep_job(seed=29))
    logs = client.logs(event="request")
    assert logs["count"] >= 2
    assert all(d["request_id"].startswith("r-") for d in logs["events"])
    ends = [d for d in logs["events"] if d["event"] == "request.end"]
    assert ends and all("status" in d and "elapsed_s" in d for d in ends)
    # Job/point events inherit the submitting request's correlation ids.
    job_logs = client.logs(event="job.finished")
    assert job_logs["events"]
    assert job_logs["events"][-1]["request_id"].startswith("r-")
    assert job_logs["events"][-1]["job_id"].startswith("j-")
    # The since/limit cursor pages without duplication.
    page = client.logs(since=logs["next_seq"])
    assert all(d["seq"] > logs["next_seq"] for d in page["events"])


def test_rejected_job_logged_and_carries_request_id(server):
    client = ServeClient(*server.address)
    with pytest.raises(ServeError, match="rejected"):
        list(client.submit({"kind": "destroy"}))
    rejects = client.logs(event="request.reject", level="warning")
    assert rejects["events"]
    assert rejects["events"][-1]["request_id"].startswith("r-")


def test_unhandled_exception_is_counted_logged_and_returns_request_id(
        server, monkeypatch):
    """Satellite: the 500 path must not be silent — the error body
    carries the request id, the oplog records it, and the exception
    counter increments."""
    client = ServeClient(*server.address)

    def boom(**_kw):
        raise RuntimeError("synthetic metrics failure")

    monkeypatch.setattr(server.server, "metrics_doc", boom)
    import http.client

    conn = http.client.HTTPConnection(*server.address, timeout=30)
    try:
        conn.request("GET", "/metrics")
        resp = conn.getresponse()
        body = json.loads(resp.read())
    finally:
        conn.close()
    monkeypatch.undo()
    assert resp.status == 500
    assert body["request_id"].startswith("r-")
    assert "RuntimeError" in body["error"]
    errors = client.logs(event="request.error", level="error")
    assert errors["events"]
    last = errors["events"][-1]
    assert last["request_id"].startswith("r-")
    assert "RuntimeError" in last["error"]
    snap = client.metrics()["registry"]
    assert snap.get('serve.http_exceptions_total{kind=RuntimeError}', 0) >= 1
    assert client.health()["ok"]  # server survived


def test_readiness_distinct_from_liveness(tmp_path):
    """`/healthz` is liveness (always 200 while the loop runs);
    `/healthz?ready=1` is readiness — 503 until the worker pool
    exists."""
    with BackgroundServer(workers=1, cache=str(tmp_path / "c"),
                          warm=False) as bg:
        client = ServeClient(*bg.address)
        assert client.health()["ok"]          # alive
        with pytest.raises(ServeError, match="503"):
            client.health(ready=True)         # not ready yet
        import http.client

        conn = http.client.HTTPConnection(*bg.address, timeout=30)
        try:
            conn.request("GET", "/healthz?ready=1")
            resp = conn.getresponse()
            body = json.loads(resp.read())
        finally:
            conn.close()
        assert resp.status == 503
        assert body["ready"] is False and body["request_id"].startswith("r-")
        job = {"kind": "compare", "app": "bsp", "nodes": 2,
               "pattern": "2.5pct@100Hz", "seed": 30,
               "app_params": _PARAMS}
        _records, stats = client.records(job)
        assert stats["errors"] == 0           # first job forced the pool
        assert client.health(ready=True)["ready"] is True


def test_traced_job_streams_one_trace_event(server):
    client = ServeClient(*server.address)
    events = list(client.submit(_sweep_job(seed=32, trace=True)))
    traces = [e for e in events if e["event"] == "trace"]
    assert len(traces) == 1
    tr = traces[0]
    assert tr["points"] == 4 and tr["request_id"].startswith("r-")
    assert tr["trace"]["traceEvents"]
    # Untraced jobs don't pay for (or stream) a trace.
    events = list(client.submit(_sweep_job(seed=32)))
    assert not any(e["event"] == "trace" for e in events)


def test_cli_submit_trace_writes_perfetto_file(server, tmp_path):
    from repro.cli import main
    import io

    host, port = server.address
    path = tmp_path / "req.json"
    out = io.StringIO()
    rc = main(["submit", "--host", host, "--port", str(port),
               "--app", "bsp", "--nodes", "2",
               "--patterns", "quiet,2.5pct@100Hz",
               "--trace", str(path)], out=out)
    assert rc == 0
    assert "trace:" in out.getvalue()
    doc = json.loads(path.read_text())
    assert doc["otherData"]["generator"] == "repro.obs.reqtrace"


def test_cli_top_renders_a_frame(server):
    from repro.cli import main
    import io

    host, port = server.address
    out = io.StringIO()
    rc = main(["top", "--host", host, "--port", str(port), "--once"], out=out)
    assert rc == 0
    text = out.getvalue()
    assert "repro top" in text
    assert "rates (" in text and "latency:" in text
    assert "workers:" in text
    assert "\x1b[" not in text  # no ANSI control codes off-tty


def test_cli_top_unreachable_server_is_rc2():
    from repro.cli import main
    import io

    out = io.StringIO()
    rc = main(["top", "--port", "1", "--once"], out=out)
    assert rc == 2
    assert "unreachable" in out.getvalue()


def test_top_render_frame_handles_empty_documents():
    from repro.serve.top import render_frame

    text = render_frame({}, None)
    assert "repro top" in text and "--" in text


# -- mid-stream disconnect regression ---------------------------------------

def _truncating_server(chunks):
    """A one-shot fake server: accept one request, stream the given
    pre-encoded chunked-transfer byte strings, then slam the socket
    shut without ever sending the terminal ``stats`` event."""
    import socket
    import threading

    srv = socket.socket()
    srv.bind(("127.0.0.1", 0))
    srv.listen(1)
    port = srv.getsockname()[1]

    def serve():
        conn, _addr = srv.accept()
        try:
            conn.settimeout(5)
            data = b""
            while b"\r\n\r\n" not in data:
                data += conn.recv(65536)
            conn.sendall(b"HTTP/1.1 200 OK\r\n"
                         b"Content-Type: application/x-ndjson\r\n"
                         b"Transfer-Encoding: chunked\r\n\r\n")
            for chunk in chunks:
                conn.sendall(f"{len(chunk):x}\r\n".encode()
                             + chunk + b"\r\n")
        finally:
            conn.close()
            srv.close()

    threading.Thread(target=serve, daemon=True).start()
    return port


def _ndjson(event):
    return (json.dumps(event) + "\n").encode()


def test_submit_raises_clean_error_when_stream_dies_early():
    """A server that disappears after streaming some events (but
    before the terminal 'stats' line) must surface as ServeError, not
    a StopIteration/JSONDecodeError traceback."""
    record = {"event": "record",
              "record": {"nodes": 2, "pattern": "quiet", "makespan_ms": 1.0}}
    port = _truncating_server([_ndjson(record)])
    client = ServeClient("127.0.0.1", port, timeout=5)
    events = []
    with pytest.raises(ServeError, match="before the terminal 'stats'"):
        for event in client.submit({"kind": "sweep"}):
            events.append(event)
    assert events == [record]  # everything before the cut still streamed


def test_submit_raises_clean_error_on_partial_ndjson_line():
    """A connection cut mid-line (truncated NDJSON) is a ServeError
    too — whichever of the read/decode layers sees it first."""
    port = _truncating_server([b'{"event": "rec'])
    client = ServeClient("127.0.0.1", port, timeout=5)
    with pytest.raises(ServeError):
        list(client.submit({"kind": "sweep"}))


def test_cli_submit_midstream_close_is_rc2():
    """`repro submit` against a server that dies mid-stream: clean
    one-line error on stdout and exit code 2."""
    from repro.cli import main
    import io

    record = {"event": "record",
              "record": {"nodes": 2, "pattern": "quiet", "makespan_ms": 1.0}}
    port = _truncating_server([_ndjson(record)])
    out = io.StringIO()
    rc = main(["submit", "--port", str(port), "--app", "bsp",
               "--nodes", "2", "--patterns", "quiet"], out=out)
    assert rc == 2
    assert "error:" in out.getvalue()
    assert "Traceback" not in out.getvalue()
