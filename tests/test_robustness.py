"""Regression tests: cache keying, FIFO delivery, executor degradation.

The cache and FIFO tests pin down two real bugs (set-token collisions
keyed by ``str()``; equal-timestamp arrivals on one channel ordered
only by heap tiebreak) — they fail on the pre-fix code.
"""

from repro.core import ExperimentConfig
from repro.faults import FaultPlan
from repro.kernel import KernelConfig, Node
from repro.net import LogGPParams, Message, Network
from repro.parallel import SweepExecutor
from repro.parallel.cache import MISS, ResultCache, config_key
from repro.parallel.executor import PointError
from repro.sim import Environment

_FAST = {"work_ns": 50_000, "iterations": 3}


def _cfg(nodes=4, **kw):
    return ExperimentConfig(app="bsp", nodes=nodes, app_params=_FAST, **kw)


#: A plan that kills node 0 instantly: every run with it raises
#: FaultError once retries are exhausted (fast, deterministic failure).
_CRASH = FaultPlan(crashes=((0, 0),), ack_timeout_ns=20_000, max_retries=1)


# -- cache keying --------------------------------------------------------------

def test_config_key_distinguishes_set_member_types():
    # str()-keyed sorting collapsed {1} and {"1"} onto one cache key.
    assert config_key({1}) != config_key({"1"})
    assert config_key(frozenset([1, "1"])) != config_key(frozenset(["1"]))
    # Same set, any construction order: same key.
    assert config_key({"b", "a", "c"}) == config_key({"c", "a", "b"})


def test_config_key_mixed_type_sets_are_stable():
    values = [1, "1", 2.5, ("x",), None, True]
    keys = {config_key(frozenset(values)) for _ in range(10)}
    assert len(keys) == 1


def test_cache_stores_none_and_falsy_values(tmp_path):
    cache = ResultCache(tmp_path)
    for marker, value in [("none", None), ("zero", 0), ("empty", "")]:
        cache.put({"point": marker}, value)
        assert cache.get({"point": marker}, MISS) == value
        assert cache.get({"point": marker}, MISS) is not MISS
    assert cache.get({"point": "absent"}, MISS) is MISS
    assert cache.get({"point": "absent"}) is None  # default default


def test_get_or_run_serves_cached_none_without_recompute(tmp_path):
    cache = ResultCache(tmp_path)
    calls = []

    def compute():
        calls.append(1)
        return None

    assert cache.get_or_run({"k": 1}, compute) is None
    assert cache.get_or_run({"k": 1}, compute) is None
    assert len(calls) == 1  # a cached None is a hit, not a miss


# -- per-channel FIFO ----------------------------------------------------------

def _net(params):
    env = Environment()
    nodes = [Node(env, i, KernelConfig.lightweight()) for i in range(3)]
    net = Network(env, nodes, params=params)
    return env, net


def test_zero_gap_flood_arrivals_strictly_ordered():
    # g=0: every message departs at once and lands on one timestamp —
    # pre-fix, delivery order was whatever the event heap happened to do.
    env, net = _net(LogGPParams(L=1000, o=0, g=0, G=0.0))
    log = []
    net.on_deliver(lambda m: log.append((env.now, m.tag)))
    for tag in range(8):
        net.inject(Message(src=0, dst=1, tag=tag, size=0))
    env.run()
    times = [t for t, _ in log]
    assert [tag for _, tag in log] == list(range(8))  # injection order
    assert all(a < b for a, b in zip(times, times[1:]))  # strictly


def test_smaller_message_never_overtakes_larger():
    # Big message pays G*size on the wire; with a small NIC gap the
    # later small message would land first without channel booking.
    env, net = _net(LogGPParams(L=1000, o=0, g=10, G=5.0))
    log = []
    net.on_deliver(lambda m: log.append(m.tag))
    net.inject(Message(src=0, dst=1, tag=0, size=4000))  # slow
    net.inject(Message(src=0, dst=1, tag=1, size=0))     # fast
    env.run()
    assert log == [0, 1]


def test_distinct_channels_do_not_serialize_each_other():
    env, net = _net(LogGPParams(L=1000, o=0, g=0, G=0.0))
    log = []
    net.on_deliver(lambda m: log.append((env.now, m.src, m.dst)))
    net.inject(Message(src=0, dst=1, tag=0, size=0))
    net.inject(Message(src=2, dst=1, tag=0, size=0))
    env.run()
    # Different (src, dst) channels may share a timestamp freely.
    assert [t for t, *_ in log] == [1000, 1000]


# -- executor graceful degradation ---------------------------------------------

def test_failed_point_is_isolated_and_reported():
    ex = SweepExecutor(workers=1)
    results, timings = ex.run_configs({
        "ok": _cfg(seed=1),
        "doomed": _cfg(seed=2, faults=_CRASH),
        "also-ok": _cfg(seed=3),
    })
    assert set(results) == {"ok", "also-ok"}
    assert set(timings) == {"ok", "also-ok"}
    assert set(ex.last_errors) == {"doomed"}
    err = ex.last_errors["doomed"]
    assert isinstance(err, PointError)
    assert err.kind == "FaultError" and err.retried
    assert "label" in err.as_dict()


def test_failed_point_is_isolated_in_pool_mode():
    ex = SweepExecutor(workers=2)
    results, _ = ex.run_configs({
        "ok": _cfg(seed=1),
        "doomed": _cfg(seed=2, faults=_CRASH),
    })
    assert set(results) == {"ok"}
    assert ex.last_errors["doomed"].kind == "FaultError"


def test_failure_is_retried_once(monkeypatch):
    import repro.parallel.executor as mod
    attempts = []
    real = mod._run_point

    def flaky(cfg, det_check=False):
        attempts.append(cfg.seed)
        if cfg.seed == 99 and attempts.count(99) == 1:
            raise RuntimeError("transient worker loss")
        return real(cfg, det_check)

    monkeypatch.setattr(mod, "_run_point", flaky)
    ex = SweepExecutor(workers=1)
    results, _ = ex.run_configs({"flaky": _cfg(seed=99)})
    # First attempt failed, the serial retry succeeded: no error.
    assert attempts.count(99) == 2
    assert set(results) == {"flaky"} and not ex.last_errors


def test_failed_points_are_not_cached(tmp_path):
    ex = SweepExecutor(workers=1, cache=str(tmp_path))
    ex.run_configs({"doomed": _cfg(faults=_CRASH)})
    assert ex.last_errors and len(ex.cache) == 0


def test_run_sweep_returns_partial_results(monkeypatch):
    import repro.parallel.executor as mod
    real = mod._run_point

    def failing_noisy_p4(cfg, det_check=False):
        if cfg.nodes == 4 and cfg.noise_pattern != "quiet":
            raise RuntimeError("boom")
        return real(cfg, det_check)

    monkeypatch.setattr(mod, "_run_point", failing_noisy_p4)
    ex = SweepExecutor(workers=1)
    results = ex.run_sweep(_cfg(), nodes=[4, 8],
                           patterns=["quiet", "2.5pct@10Hz"])
    assert set(results) == {(4, "quiet"), (8, "quiet"), (8, "2.5pct@10Hz")}
    assert ex.last_stats.failed == 1
    assert ex.last_stats.errors[0].kind == "RuntimeError"
    assert ex.last_stats.as_dict()["failed"] == 1


def test_run_sweep_reports_missing_baseline(monkeypatch):
    import repro.parallel.executor as mod
    real = mod._run_point

    def failing_quiet_p4(cfg, det_check=False):
        if cfg.nodes == 4 and cfg.noise_pattern == "quiet":
            raise RuntimeError("baseline gone")
        return real(cfg, det_check)

    monkeypatch.setattr(mod, "_run_point", failing_quiet_p4)
    ex = SweepExecutor(workers=1)
    results = ex.run_sweep(_cfg(), nodes=[4, 8],
                           patterns=["quiet", "2.5pct@10Hz"])
    # The P=4 noisy run survived but has no baseline: both P=4 keys
    # are absent and the loss is reported, P=8 is intact.
    assert set(results) == {(8, "quiet"), (8, "2.5pct@10Hz")}
    kinds = {e.kind for e in ex.last_stats.errors}
    assert kinds == {"RuntimeError", "MissingBaseline"}


def test_run_comparisons_drops_orphaned_comparison(monkeypatch):
    import repro.parallel.executor as mod
    real = mod._run_point

    def failing_quiet(cfg, det_check=False):
        if cfg.noise_pattern == "quiet":
            raise RuntimeError("no baseline for you")
        return real(cfg, det_check)

    monkeypatch.setattr(mod, "_run_point", failing_quiet)
    ex = SweepExecutor(workers=1)
    results = ex.run_comparisons({
        "a": _cfg(noise_pattern="2.5pct@10Hz")})
    assert results == {}
    kinds = {e.kind for e in ex.last_stats.errors}
    assert kinds == {"RuntimeError", "MissingBaseline"}


# -- parallel determinism with faults ------------------------------------------

def test_faulty_sweep_identical_serial_vs_parallel():
    plan = FaultPlan(drop_rate=0.02, duplicate_rate=0.01, seed=5,
                     ack_timeout_ns=200_000)
    configs = {s: _cfg(seed=s, faults=plan) for s in range(3)}
    serial, _ = SweepExecutor(workers=1).run_configs(configs)
    parallel, _ = SweepExecutor(workers=3).run_configs(configs)
    for s in configs:
        assert serial[s].makespan_ns == parallel[s].makespan_ns
        assert serial[s].meta == parallel[s].meta
