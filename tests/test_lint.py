"""detlint self-tests.

Each rule gets at least one positive fixture (the hazard, caught) and
one negative (the sanctioned alternative, silent); on top of that:
inline-suppression handling, fingerprint stability, baseline
round-trips, JSON schema stability, CLI exit codes, and the meta-test
that the live ``src/repro`` tree itself is detlint-clean.
"""

import io
import json
import textwrap
from pathlib import Path

import pytest

from repro.lint.baseline import Baseline
from repro.lint.cli import main as lint_main
from repro.lint.engine import (
    HOT_PATH_MODULES,
    PARSE_ERROR_RULE,
    lint_paths,
    lint_source,
    module_scope,
    normalize_path,
)
from repro.lint.report import SCHEMA_VERSION, render_json
from repro.lint.rules import RULES, rule_catalog

REPO_ROOT = Path(__file__).resolve().parent.parent


def findings(src, *, scope="sim", path="repro/sim/fixture.py"):
    found, _n = lint_source(textwrap.dedent(src), path, scope=scope)
    return found


def rule_ids(src, **kw):
    return [f.rule for f in findings(src, **kw)]


# -- scope map --------------------------------------------------------------

@pytest.mark.parametrize("parts,scope", [
    (("sim", "core.py"), "sim"),
    (("noise", "patterns.py"), "sim"),
    (("obs", "trace.py"), "sim"),
    (("parallel", "executor.py"), "host"),
    (("harness", "registry.py"), "host"),
    (("lint", "engine.py"), "host"),
    (("cli.py",), "host"),
    (("__main__.py",), "host"),
    (("errors.py",), "neutral"),
    (("__init__.py",), "neutral"),
])
def test_module_scope(parts, scope):
    assert module_scope(parts) == scope


def test_normalize_path_roots_at_repro():
    disp, rel = normalize_path("/home/x/src/repro/sim/core.py")
    assert disp == "repro/sim/core.py"
    assert rel == ("sim", "core.py")
    disp, rel = normalize_path("fixture.py")
    assert disp == "fixture.py"


# -- DET001: wall clock / entropy -------------------------------------------

DET001_BAD = """
    import time
    def stamp():
        return time.time()
"""


def test_det001_flags_wall_clock():
    assert rule_ids(DET001_BAD) == ["DET001"]


def test_det001_resolves_import_aliases():
    src = """
        from time import perf_counter as pc
        import datetime
        def f():
            return pc(), datetime.datetime.now()
    """
    assert rule_ids(src) == ["DET001", "DET001"]


def test_det001_flags_entropy_sources():
    src = """
        import os, uuid, secrets
        def f():
            return os.urandom(8), uuid.uuid4(), secrets.token_hex(4)
    """
    assert rule_ids(src) == ["DET001"] * 3


def test_det001_silent_on_env_now_and_in_host_scope():
    good = """
        def stamp(env):
            return env.now
    """
    assert rule_ids(good) == []
    # Host-scoped modules may read the wall clock (sweep timings).
    assert rule_ids(DET001_BAD, scope="host",
                    path="repro/parallel/fixture.py") == []


# -- DET002: global random module -------------------------------------------

def test_det002_flags_global_random():
    assert rule_ids("import random\n") == ["DET002"]
    assert rule_ids("from random import choice\n") == ["DET002"]


def test_det002_silent_on_rng_streams():
    src = """
        from repro.sim.rng import RandomTree
        def make(seed):
            return RandomTree(seed).generator("node/0")
    """
    assert rule_ids(src) == []


# -- DET003: unordered iteration --------------------------------------------

def test_det003_flags_set_iteration():
    src = """
        def emit(env, a, b):
            for n in set(a) | set(b):
                env.schedule(n)
    """
    assert rule_ids(src) == ["DET003"]


def test_det003_flags_values_loop_feeding_a_sink():
    src = """
        def emit(env, waiting):
            for proc in waiting.values():
                env.schedule(proc)
    """
    assert rule_ids(src) == ["DET003"]


def test_det003_flags_set_comprehension_source():
    src = "labels = [str(x) for x in {1, 2, 3}]\n"
    assert rule_ids(src) == ["DET003"]


def test_det003_silent_on_sorted_and_pure_reads():
    src = """
        def emit(env, a, b, stats):
            for n in sorted(set(a) | set(b)):
                env.schedule(n)
            total = 0
            for v in stats.values():
                total += v
            return total
    """
    assert rule_ids(src) == []


# -- DET004: id() ordering ---------------------------------------------------

def test_det004_flags_id_keys_and_sort_keys():
    src = """
        def index(objs, table):
            for o in objs:
                table[id(o)] = o
            return sorted(objs, key=id)
    """
    assert rule_ids(src) == ["DET004", "DET004"]


def test_det004_exempts_repr():
    src = """
        class Event:
            def __repr__(self):
                return f"<Event {id(self):#x}>"
    """
    assert rule_ids(src) == []


# -- DET005: float sum over unordered ---------------------------------------

def test_det005_flags_sum_over_sets():
    src = """
        import math
        def total(xs):
            return sum(set(xs)) + math.fsum(x * 2.0 for x in set(xs))
    """
    # The generator over set(xs) also trips DET003 — both are real.
    assert sorted(rule_ids(src)) == ["DET003", "DET005", "DET005"]


def test_det005_silent_on_ordered_accumulation():
    src = """
        def total(xs):
            return sum(sorted(set(xs))) + sum([1.0, 2.0])
    """
    assert rule_ids(src) == []


# -- DET006: environment reads ----------------------------------------------

def test_det006_flags_environ_and_getenv():
    src = """
        import os
        def knobs():
            return os.environ["SCALE"], os.getenv("SEED", "0")
    """
    assert rule_ids(src) == ["DET006", "DET006"]


def test_det006_exempt_in_host_scope():
    src = "import os\nw = os.getenv('WORKERS')\n"
    assert rule_ids(src, scope="host",
                    path="repro/harness/fixture.py") == []


# -- SIM001: dropped generator call -----------------------------------------

def test_sim001_flags_bare_generator_statement():
    src = """
        def worker(env):
            yield env.timeout(1)
        def start(env):
            worker(env)
    """
    assert rule_ids(src) == ["SIM001"]


def test_sim001_flags_self_method_generator():
    src = """
        class Node:
            def pump(self):
                yield self.env.timeout(1)
            def start(self):
                self.pump()
    """
    assert rule_ids(src) == ["SIM001"]


def test_sim001_silent_when_wrapped_or_unrelated():
    src = """
        def worker(env):
            yield env.timeout(1)
        class Comm:
            def send(self, msg):
                yield msg
        def start(env, transport):
            env.process(worker(env))
            transport.send("x")  # unrelated object's send: not ours
    """
    assert rule_ids(src) == []


# -- SIM002: non-Event yield -------------------------------------------------

def test_sim002_flags_plain_yield_in_registered_process():
    src = """
        def proc(env):
            yield 5
        def start(env):
            env.process(proc(env))
    """
    assert rule_ids(src) == ["SIM002"]


def test_sim002_silent_for_event_yields_and_data_generators():
    src = """
        def proc(env):
            yield env.timeout(5)
        def intervals():
            yield (0, 10)  # data generator, never registered
        def start(env):
            env.process(proc(env))
    """
    assert rule_ids(src) == []


# -- PERF001: hot-path __slots__ --------------------------------------------

HOT_PATH = sorted(HOT_PATH_MODULES)[0]


def test_perf001_flags_hot_path_class_without_slots():
    found = findings("class Event:\n    pass\n", path=HOT_PATH)
    assert [f.rule for f in found] == ["PERF001"]
    assert found[0].severity == "warning"


def test_perf001_satisfied_by_slots_or_dataclass_slots():
    src = """
        from dataclasses import dataclass
        class Event:
            __slots__ = ("env", "value")
        @dataclass(slots=True)
        class Message:
            size: int
        class SimError(Exception):
            pass
    """
    assert rule_ids(src, path=HOT_PATH) == []


def test_perf001_only_applies_to_hot_path_modules():
    assert rule_ids("class Lazy:\n    pass\n",
                    path="repro/analysis/fixture.py") == []


# -- PERF002: all-pairs rank loops -------------------------------------------

def test_perf002_flags_nested_rank_range_loops():
    src = """
        def all_pair_costs(topo, n_nodes):
            out = []
            for a in range(n_nodes):
                for b in range(n_nodes):
                    out.append(topo.extra_latency(a, b))
            return out
    """
    found = findings(src, path="repro/net/fixture.py")
    assert [f.rule for f in found] == ["PERF002"]
    assert found[0].severity == "warning"


def test_perf002_sees_attribute_bounds_and_host_scope():
    src = """
        def audit(self):
            for a in range(self.n_nodes):
                for b in range(self.n_nodes):
                    self.check(a, b)
    """
    assert rule_ids(src, scope="host",
                    path="repro/harness/fixture.py") == ["PERF002"]


def test_perf002_exempts_precompute_builders():
    src = """
        def _build_extra_matrix(self):
            for a in range(self.n_nodes):
                for b in range(self.n_nodes):
                    self.mat[a][b] = self.extra_latency(a, b)

        def _pair_table(self, n_ranks):
            for a in range(n_ranks):
                for b in range(n_ranks):
                    yield a, b
    """
    assert rule_ids(src, path="repro/net/fixture.py") == []


def test_perf002_silent_on_single_loops_and_other_bounds():
    src = """
        def fine(n_nodes, phases):
            for a in range(n_nodes):
                total = a * 2
            for p in range(len(phases)):
                for q in range(4):
                    total += p * q
            return total
    """
    assert rule_ids(src, path="repro/net/fixture.py") == []


# -- OBS001: ungated telemetry ----------------------------------------------

def test_obs001_flags_ungated_registry_and_tracer():
    src = """
        def record(self, reg):
            registry().counter("sim.runs").inc()
            self.tracer.instant("sim", "tick", 0)
    """
    assert rule_ids(src) == ["OBS001", "OBS001"]


def test_obs001_accepts_both_gate_shapes():
    src = """
        def direct(self):
            if self._metrics:
                registry().counter("sim.runs").inc()
        def early_return(_obs):
            if not _obs.metrics_enabled():
                return
            registry().counter("sim.runs").inc()
        def borrowed_gate(self, tracer):
            tracer.complete("mpi", "bcast", 0, 5)
        def readout(out, _obs):
            out.write(_obs.registry().render())
    """
    assert rule_ids(src) == []


# -- suppressions ------------------------------------------------------------

def test_inline_suppression_same_line():
    src = ("import time\n"
           "t0 = time.time()  # detlint: disable=DET001\n")
    found, n_sup = lint_source(src, "repro/sim/f.py", scope="sim")
    assert found == [] and n_sup == 1


def test_inline_suppression_next_line_and_all():
    src = ("import time\n"
           "# detlint: disable-next=DET001\n"
           "t0 = time.time()\n"
           "t1 = time.time()  # detlint: disable=all\n")
    found, n_sup = lint_source(src, "repro/sim/f.py", scope="sim")
    assert found == [] and n_sup == 2


def test_suppression_is_rule_specific():
    src = ("import time\n"
           "t0 = time.time()  # detlint: disable=DET003\n")
    found, n_sup = lint_source(src, "repro/sim/f.py", scope="sim")
    assert [f.rule for f in found] == ["DET001"] and n_sup == 0


# -- fingerprints & baseline -------------------------------------------------

def test_fingerprint_is_line_number_independent():
    a, _ = lint_source("import random\n", "repro/sim/f.py", scope="sim")
    b, _ = lint_source("\n\n\nimport random\n", "repro/sim/f.py",
                       scope="sim")
    assert a[0].line != b[0].line
    assert a[0].fingerprint == b[0].fingerprint


def test_duplicate_findings_get_distinct_fingerprints():
    src = "import time\na = time.time()\nb = time.time()\n"
    found, _ = lint_source(src, "repro/sim/f.py", scope="sim")
    assert len(found) == 2
    assert len({f.fingerprint for f in found}) == 2


def test_baseline_round_trip(tmp_path):
    bad = tmp_path / "repro" / "sim" / "legacy.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\n")

    dirty = lint_paths([bad])
    assert [f.rule for f in dirty.findings] == ["DET002"]
    assert not dirty.clean

    path = tmp_path / "detlint-baseline.json"
    Baseline.from_findings(dirty.findings).dump(path)
    loaded = Baseline.load(path)
    assert loaded.contains(dirty.findings[0])

    grandfathered = lint_paths([bad], baseline=loaded)
    assert grandfathered.clean
    assert [f.rule for f in grandfathered.baselined] == ["DET002"]
    assert grandfathered.baselined[0].baselined


def test_baseline_rejects_foreign_files(tmp_path):
    from repro.errors import ConfigError

    path = tmp_path / "bogus.json"
    path.write_text(json.dumps({"tool": "other", "version": 1,
                                "entries": []}))
    with pytest.raises(ConfigError):
        Baseline.load(path)


# -- parse errors ------------------------------------------------------------

def test_syntax_error_becomes_a_finding():
    found, _ = lint_source("def broken(:\n", "repro/sim/f.py", scope="sim")
    assert [f.rule for f in found] == [PARSE_ERROR_RULE]


# -- JSON report schema ------------------------------------------------------

def test_json_report_schema_is_stable(tmp_path):
    bad = tmp_path / "repro" / "sim" / "m.py"
    bad.parent.mkdir(parents=True)
    bad.write_text("import random\n")
    doc = json.loads(render_json(lint_paths([bad]), paths=[str(bad)]))

    assert doc["tool"] == "detlint"
    assert doc["schema_version"] == SCHEMA_VERSION
    assert set(doc) == {"tool", "schema_version", "paths", "rules",
                        "findings", "summary"}
    assert set(doc["summary"]) == {"files", "active", "baselined",
                                   "suppressed", "by_rule", "clean"}
    (finding,) = doc["findings"]
    assert set(finding) == {"rule", "severity", "path", "line", "col",
                            "message", "fingerprint", "baselined"}
    assert doc["summary"]["by_rule"] == {"DET002": 1}
    assert set(doc["rules"]) == set(RULES)


def test_json_report_is_byte_stable(tmp_path):
    """Two runs over the same tree render the identical byte string:
    globally sorted findings, "fixable" on every rule entry, one
    trailing newline — what CI artifact diffing relies on."""
    for name, src in [("b.py", "import random\n"),
                      ("a.py", "import time\nt = time.time()\n")]:
        target = tmp_path / "repro" / "sim" / name
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
    def render():
        return render_json(lint_paths([tmp_path]), paths=[str(tmp_path)])

    first, second = render(), render()
    assert first == second
    assert first.endswith("}\n") and not first.endswith("\n\n")
    doc = json.loads(first)
    order = [(f["path"], f["line"], f["col"], f["rule"])
             for f in doc["findings"]]
    assert order == sorted(order)
    assert all("fixable" in entry for entry in doc["rules"].values())
    # per-rule timing is --stats-only: wall-clock noise would break
    # byte-stability.
    assert "rule_costs" not in doc


def test_rule_catalog_is_complete():
    cat = rule_catalog()
    assert {r["id"] for r in cat} == set(RULES)
    assert all(r["summary"] and r["doc"] for r in cat)
    assert len(RULES) >= 19
    for prefix in ("DET007", "DET008", "DET009", "ASYNC00"):
        assert any(r["id"].startswith(prefix) for r in cat)


# -- CLI ---------------------------------------------------------------------

def _cli(*argv):
    out = io.StringIO()
    code = lint_main(list(argv), out)
    return code, out.getvalue()


def test_cli_exit_codes(tmp_path):
    clean = tmp_path / "clean.py"
    clean.write_text("def f(env):\n    return env.now\n")
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n")

    assert _cli(str(clean), "--no-baseline")[0] == 0
    code, text = _cli(str(dirty), "--no-baseline")
    assert code == 1 and "DET002" in text
    assert _cli(str(tmp_path / "missing.py"))[0] == 2


def test_cli_json_output_and_artifact(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n")
    artifact = tmp_path / "report.json"
    code, text = _cli(str(dirty), "--no-baseline", "--json",
                      "--output", str(artifact))
    assert code == 1
    assert json.loads(text) == json.loads(artifact.read_text())


def test_cli_write_baseline_then_clean(tmp_path):
    dirty = tmp_path / "dirty.py"
    dirty.write_text("import random\n")
    baseline = tmp_path / "base.json"
    code, _ = _cli(str(dirty), "--baseline", str(baseline),
                   "--write-baseline")
    assert code == 0
    assert _cli(str(dirty), "--baseline", str(baseline))[0] == 0


def test_cli_list_rules():
    code, text = _cli("--list-rules")
    assert code == 0
    for rid in RULES:
        assert rid in text
    assert "fixable" in text


def test_cli_explain():
    code, text = _cli("--explain", "DET007")
    assert code == 0
    assert "DET007" in text and "taint" in text.lower()
    code, text = _cli("--explain", "NOPE42")
    assert code == 2 and "unknown rule" in text


def test_cli_check_and_prune_baseline(tmp_path):
    dirty = tmp_path / "legacy.py"
    dirty.write_text("import random\nimport time\nt = time.time()\n")
    baseline = tmp_path / "base.json"
    assert _cli(str(dirty), "--baseline", str(baseline),
                "--write-baseline")[0] == 0
    # Baseline is tight while both findings still fire.
    code, text = _cli(str(dirty), "--baseline", str(baseline),
                      "--check-baseline")
    assert code == 0 and "tight" in text
    # Fixing one finding leaves a stale fingerprint behind ...
    dirty.write_text("import random\n")
    code, text = _cli(str(dirty), "--baseline", str(baseline),
                      "--check-baseline")
    assert code == 1 and "stale" in text and "DET001" in text
    # ... which --prune-baseline drops, making the check pass again.
    code, text = _cli(str(dirty), "--baseline", str(baseline),
                      "--prune-baseline")
    assert code == 0 and "pruned 1" in text
    assert _cli(str(dirty), "--baseline", str(baseline),
                "--check-baseline")[0] == 0
    assert _cli(str(dirty), "--baseline", str(baseline))[0] == 0


def test_cli_profile_overrides_path_scope(tmp_path):
    probe = tmp_path / "repro" / "sim" / "timing.py"
    probe.parent.mkdir(parents=True)
    probe.write_text("import time\nt0 = time.time()\n")
    assert _cli(str(probe), "--no-baseline")[0] == 1
    # The CI profile for tests/ and benchmarks/: host rules only.
    assert _cli(str(probe), "--no-baseline", "--profile", "host")[0] == 0


def test_cli_jobs_output_is_identical_to_serial(tmp_path):
    for i in range(6):
        target = tmp_path / "repro" / "sim" / f"m{i}.py"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text("import random\nimport time\n"
                          f"t{i} = time.time()\n")
    serial = _cli(str(tmp_path), "--no-baseline", "--json")
    threaded = _cli(str(tmp_path), "--no-baseline", "--json",
                    "--jobs", "4")
    assert serial == threaded and serial[0] == 1
    assert _cli(str(tmp_path), "--jobs", "0")[0] == 2


# -- the live tree ----------------------------------------------------------

def test_live_source_tree_is_clean():
    """src/repro must stay detlint-clean (modulo the checked-in
    baseline) — the same invariant CI enforces."""
    src = REPO_ROOT / "src" / "repro"
    baseline_file = REPO_ROOT / "detlint-baseline.json"
    baseline = (Baseline.load(baseline_file)
                if baseline_file.is_file() else None)
    report = lint_paths([src], baseline=baseline)
    assert report.files > 100  # the walk really saw the package
    assert report.clean, "\n".join(f.format() for f in report.findings)


def test_detlint_catches_a_planted_wall_clock(tmp_path):
    """Acceptance probe: a time.time() dropped into a copy of
    sim/core.py is caught (what the CI gate relies on)."""
    core = (REPO_ROOT / "src" / "repro" / "sim" / "core.py").read_text()
    planted = tmp_path / "repro" / "sim" / "core.py"
    planted.parent.mkdir(parents=True)
    planted.write_text(core + "\n\nimport time\n_T0 = time.time()\n")
    report = lint_paths([planted])
    assert any(f.rule == "DET001" for f in report.findings)
