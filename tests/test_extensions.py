"""Tests for extensions: scan/exscan/reduce_scatter, the transpose app,
core-specialization noise isolation, and the CLI."""

import io

import pytest

from repro.apps import TransposeApp, build_workload
from repro.cli import main as cli_main
from repro.core import ExperimentConfig, Machine, MachineConfig, run_with_baseline
from repro.errors import MPIError
from repro.kernel import KernelConfig
from repro.noise import InjectionPlan, NullNoise
from repro.sim import MS

SIZES = [1, 2, 3, 5, 8]


def _run_collective(n_nodes, program):
    m = Machine(MachineConfig(n_nodes=n_nodes))
    procs = m.launch(program)
    m.run_to_completion(procs)
    return [p.value for p in procs]


# -- scan / exscan / reduce_scatter -----------------------------------------------

@pytest.mark.parametrize("P", SIZES)
def test_scan_inclusive_prefix(P):
    def prog(ctx):
        return (yield from ctx.scan(size=8, payload=ctx.rank + 1))

    values = _run_collective(P, prog)
    assert values == [sum(range(1, r + 2)) for r in range(P)]


@pytest.mark.parametrize("P", SIZES)
def test_exscan_exclusive_prefix(P):
    def prog(ctx):
        return (yield from ctx.exscan(size=8, payload=ctx.rank + 1))

    values = _run_collective(P, prog)
    expected = [None] + [sum(range(1, r + 1)) for r in range(1, P)]
    assert values == expected


def test_scan_custom_op():
    def prog(ctx):
        return (yield from ctx.scan(size=8, payload=ctx.rank, op=max))

    values = _run_collective(6, prog)
    assert values == list(range(6))


@pytest.mark.parametrize("P", SIZES)
def test_reduce_scatter_blocks(P):
    def prog(ctx):
        payloads = [ctx.rank * 10 + i for i in range(ctx.size)]
        return (yield from ctx.reduce_scatter(size=8, payloads=payloads))

    values = _run_collective(P, prog)
    assert values == [sum(src * 10 + r for src in range(P)) for r in range(P)]


def test_reduce_scatter_payload_length_checked():
    def prog(ctx):
        return (yield from ctx.reduce_scatter(size=8, payloads=[1]))

    m = Machine(MachineConfig(n_nodes=4))
    m.launch(prog)
    with pytest.raises(MPIError):
        m.run()


def test_reduce_scatter_timing_only():
    def prog(ctx):
        return (yield from ctx.reduce_scatter(size=64))

    values = _run_collective(4, prog)
    assert values == [None] * 4


# -- transpose app ------------------------------------------------------------------

def test_transpose_block_size_shrinks_with_p():
    app = TransposeApp(total_bytes=1 << 20)
    assert app.block_bytes(4) == (1 << 20) // 16
    assert app.block_bytes(1024) == 1
    with pytest.raises(Exception):
        TransposeApp(total_bytes=0)


def test_transpose_runs_and_records():
    m = Machine(MachineConfig(n_nodes=6))
    app = build_workload("transpose", iterations=3, work_ns=100_000)
    m.run_to_completion(m.launch(app))
    assert app.all_durations_ns().shape == (6, 3)
    # 2 alltoalls x 5 partners x 6 ranks x 3 iterations messages at least.
    assert m.network.messages_transferred >= 2 * 5 * 6 * 3


def test_transpose_sensitive_to_coarse_noise():
    cmp = run_with_baseline(ExperimentConfig(
        app="transpose", nodes=9, noise_pattern="2.5pct@10Hz", seed=3,
        app_params=dict(work_ns=1_000_000, iterations=15)))
    assert cmp.slowdown.slowdown_percent > 2.5


# -- noise isolation (core specialization) ----------------------------------------------

def test_isolated_node_has_clean_app_core():
    m = Machine(MachineConfig(n_nodes=2, kernel="commodity-linux",
                              isolate_noise=True, seed=1))
    node = m.nodes[0]
    assert isinstance(node.noise, NullNoise)
    assert node.spare_core_noise is not None
    assert node.spare_core_noise.utilization > 0


def test_isolation_keeps_injected_noise_on_app_core():
    m = Machine(MachineConfig(n_nodes=2, kernel="commodity-linux",
                              injection=InjectionPlan("2.5pct@100Hz", seed=1),
                              isolate_noise=True, seed=1))
    node = m.nodes[0]
    assert node.noise.utilization == pytest.approx(0.025)
    assert node.spare_core_noise is not None


def test_isolation_speeds_up_commodity_kernel():
    def span(isolate):
        m = Machine(MachineConfig(n_nodes=4, kernel="commodity-linux",
                                  seed=2, isolate_noise=isolate))
        app = build_workload("bsp", work_ns=2 * MS, iterations=30)
        m.run_to_completion(m.launch(app))
        return app.makespan_ns()

    assert span(True) < span(False)


def test_isolation_noop_for_lightweight_kernel():
    def span(isolate):
        m = Machine(MachineConfig(n_nodes=2, kernel="lightweight",
                                  seed=2, isolate_noise=isolate))
        app = build_workload("bsp", work_ns=1 * MS, iterations=10)
        m.run_to_completion(m.launch(app))
        return app.makespan_ns()

    assert span(True) == span(False)


def test_isolated_nic_delays_but_does_not_steal():
    kernel = KernelConfig.commodity_linux()
    m = Machine(MachineConfig(n_nodes=2, kernel=kernel, isolate_noise=True))

    def sender(ctx):
        yield from ctx.send(1, size=4096)

    def receiver(ctx):
        msg = yield from ctx.recv(0)
        return msg.delivered_at

    p0 = m.env.process(sender(m.mpi.rank_context(0)))
    p1 = m.env.process(receiver(m.mpi.rank_context(1)))
    m.run_to_completion([p0, p1])
    # Delivery still includes rx processing time...
    assert p1.value >= kernel.nic.rx_cost(4096)
    # ...but no CPU was stolen from the app core.
    assert m.nodes[1].cpu.transient_stolen_ns == 0


# -- CLI --------------------------------------------------------------------------------

def test_cli_list():
    out = io.StringIO()
    assert cli_main(["list"], out=out) == 0
    text = out.getvalue()
    assert "E12" in text
    assert "transpose" in text
    assert "2.5pct@100Hz" in text


def test_cli_compare():
    out = io.StringIO()
    code = cli_main(["compare", "--app", "bsp", "--nodes", "4",
                     "--pattern", "2.5pct@100Hz", "--seed", "1"], out=out)
    assert code == 0
    assert "slowdown" in out.getvalue()


def test_cli_compare_rejects_quiet():
    out = io.StringIO()
    code = cli_main(["compare", "--pattern", "quiet"], out=out)
    assert code == 2
    assert "error:" in out.getvalue()


def test_cli_run_writes_csv(tmp_path):
    out = io.StringIO()
    csv_path = tmp_path / "e6.csv"
    code = cli_main(["run", "E6", "--csv", str(csv_path)], out=out)
    assert code == 0
    assert "[PASS]" in out.getvalue()
    assert csv_path.read_text().startswith("node,")


def test_cli_run_unknown_experiment():
    out = io.StringIO()
    assert cli_main(["run", "E99"], out=out) == 2
