"""Tests for pattern parsing and injection plans."""

import pytest

from repro.errors import ConfigError
from repro.noise import (
    CANONICAL_SWEEP,
    InjectionPlan,
    NullNoise,
    PeriodicNoise,
    PoissonNoise,
    canonical_patterns,
    parse_pattern,
    pattern_names,
)
from repro.sim import MS, US


def test_parse_quiet_variants():
    for spec in ("quiet", "none", "off", "Quiet", " quiet "):
        assert isinstance(parse_pattern(spec), NullNoise)


def test_parse_periodic_pattern():
    n = parse_pattern("2.5pct@100Hz")
    assert isinstance(n, PeriodicNoise)
    assert n.period == 10 * MS
    assert n.duration == 250 * US
    assert n.utilization == pytest.approx(0.025)


def test_parse_is_case_insensitive():
    n = parse_pattern("2.5PCT@100HZ")
    assert isinstance(n, PeriodicNoise)


def test_parse_poisson_pattern():
    n = parse_pattern("1pct@10HzPoisson", seed=5)
    assert isinstance(n, PoissonNoise)
    assert n.rate_hz == 10
    assert n.mean_duration == 1 * MS
    assert n.utilization == pytest.approx(0.01)


def test_parse_rejects_garbage():
    for bad in ("", "2.5pct", "100Hz", "2.5pct@", "pct@100Hz", "-1pct@10Hz",
                "200pct@10Hz", "2.5pct@0Hz"):
        with pytest.raises(ConfigError):
            parse_pattern(bad)


def test_canonical_sweep_is_fixed_utilization():
    for spec in CANONICAL_SWEEP:
        assert parse_pattern(spec).utilization == pytest.approx(0.025)


def test_pattern_names_order():
    assert pattern_names() == ["quiet", "2.5pct@10Hz", "2.5pct@100Hz",
                               "2.5pct@1000Hz"]


def test_canonical_patterns_instantiates_all():
    pats = canonical_patterns()
    assert set(pats) == set(pattern_names())


# -- injection plans ----------------------------------------------------------

def test_synchronized_plan_gives_phase_zero_everywhere():
    plan = InjectionPlan("2.5pct@10Hz", alignment="synchronized", seed=3)
    sources = plan.sources(8)
    assert all(isinstance(s, PeriodicNoise) and s.phase == 0 for s in sources)


def test_random_plan_gives_distinct_phases():
    plan = InjectionPlan("2.5pct@10Hz", alignment="random", seed=3)
    phases = [s.phase for s in plan.sources(16)]
    assert len(set(phases)) > 1
    assert all(0 <= p < 100 * MS for p in phases)


def test_random_plan_is_deterministic_in_seed():
    a = [s.phase for s in InjectionPlan("2.5pct@10Hz", seed=3).sources(8)]
    b = [s.phase for s in InjectionPlan("2.5pct@10Hz", seed=3).sources(8)]
    c = [s.phase for s in InjectionPlan("2.5pct@10Hz", seed=4).sources(8)]
    assert a == b
    assert a != c


def test_staggered_plan_spreads_evenly():
    plan = InjectionPlan("2.5pct@10Hz", alignment="staggered", seed=0)
    phases = [s.phase for s in plan.sources(4)]
    assert phases == [0, 25 * MS, 50 * MS, 75 * MS]


def test_quiet_plan_gives_null_sources():
    plan = InjectionPlan("quiet")
    assert all(isinstance(s, NullNoise) for s in plan.sources(4))


def test_poisson_plan_sources_are_independent():
    plan = InjectionPlan("1pct@100HzPoisson", alignment="random", seed=9)
    a, b = plan.sources(2)
    assert a.events_in(0, 10 * MS * 100) != b.events_in(0, 10 * MS * 100)


def test_poisson_synchronized_rejected():
    plan = InjectionPlan("1pct@100HzPoisson", alignment="synchronized")
    with pytest.raises(ConfigError):
        plan.sources(2)


def test_invalid_alignment_rejected():
    with pytest.raises(ConfigError):
        InjectionPlan("quiet", alignment="sideways")


def test_node_id_bounds_checked():
    plan = InjectionPlan("quiet")
    with pytest.raises(ConfigError):
        plan.source_for(5, 4)
    with pytest.raises(ConfigError):
        plan.sources(0)


def test_custom_factory_plan():
    def factory(node_id, phase, seed):
        return PeriodicNoise(1000 + node_id, 10, name=f"custom{node_id}")

    plan = InjectionPlan(factory)
    sources = plan.sources(3)
    assert [s.period for s in sources] == [1000, 1001, 1002]


def test_parse_burst_pattern():
    from repro.noise import BurstNoise
    n = parse_pattern("2.5pct@10Hzburst5")
    assert isinstance(n, BurstNoise)
    assert n.burst_count == 5
    assert n.utilization == pytest.approx(0.025)
    # Same net utilization as the plain periodic pattern.
    assert n.stolen_between(0, 10 * 100 * MS) == pytest.approx(
        parse_pattern("2.5pct@10Hz").stolen_between(0, 10 * 100 * MS),
        rel=0.01)


def test_burst_pattern_rejects_bad_counts():
    with pytest.raises(ConfigError):
        parse_pattern("0.0001pct@10000Hzburst9999")  # 0-ns slices


def test_burst_plan_alignment_supported():
    plan = InjectionPlan("2.5pct@10Hzburst4", alignment="synchronized")
    sources = plan.sources(4)
    assert all(s.phase == 0 for s in sources)
    plan_r = InjectionPlan("2.5pct@10Hzburst4", alignment="random", seed=2)
    assert len({s.phase for s in plan_r.sources(8)}) > 1
