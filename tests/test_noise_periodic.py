"""Unit + property tests for PeriodicNoise and the NoiseSource contract."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.noise import NoiseEvent, NullNoise, PeriodicNoise
from repro.sim import MS, US


def test_basic_event_enumeration():
    n = PeriodicNoise(100, 10)
    assert n.events_in(0, 300) == [
        NoiseEvent(0, 10, "periodic"),
        NoiseEvent(100, 10, "periodic"),
        NoiseEvent(200, 10, "periodic"),
    ]


def test_phase_shifts_events():
    n = PeriodicNoise(100, 10, phase=30)
    assert [e.start for e in n.events_in(0, 300)] == [30, 130, 230]


def test_negative_phase_ok():
    n = PeriodicNoise(100, 10, phase=-70)
    assert [e.start for e in n.events_in(0, 300)] == [30, 130, 230]


def test_events_window_half_open():
    n = PeriodicNoise(100, 10)
    assert [e.start for e in n.events_in(100, 200)] == [100]
    assert [e.start for e in n.events_in(101, 200)] == []


def test_invalid_params_rejected():
    with pytest.raises(ConfigError):
        PeriodicNoise(0, 10)
    with pytest.raises(ConfigError):
        PeriodicNoise(100, 0)
    with pytest.raises(ConfigError):
        PeriodicNoise(100, 100)  # utilization == 1


def test_from_frequency():
    n = PeriodicNoise.from_frequency(100, 250 * US)
    assert n.period == 10 * MS
    assert n.frequency_hz == pytest.approx(100.0)


def test_from_utilization_canonical_patterns():
    for hz, dur in [(10, 2_500 * US), (100, 250 * US), (1000, 25 * US)]:
        n = PeriodicNoise.from_utilization(0.025, hz)
        assert n.duration == dur
        assert n.utilization == pytest.approx(0.025)


def test_from_utilization_bounds():
    with pytest.raises(ConfigError):
        PeriodicNoise.from_utilization(0.0, 100)
    with pytest.raises(ConfigError):
        PeriodicNoise.from_utilization(1.0, 100)


def test_stolen_between_full_window():
    n = PeriodicNoise(100, 10)
    assert n.stolen_between(0, 1000) == 100


def test_stolen_between_head_truncation():
    n = PeriodicNoise(100, 10)
    # Event [0,10) overlaps window [5, 50) by 5 ns.
    assert n.stolen_between(5, 50) == 5


def test_stolen_between_tail_truncation():
    n = PeriodicNoise(100, 10)
    # Event at 100 truncated by window end 105.
    assert n.stolen_between(50, 105) == 5


def test_stolen_between_empty_window():
    n = PeriodicNoise(100, 10)
    assert n.stolen_between(50, 50) == 0
    assert n.stolen_between(60, 50) == 0


def test_wall_time_simple_inflation():
    # 10% utilization: 900 ns of work takes 1000 ns wall starting at 0.
    n = PeriodicNoise(100, 10)
    assert n.wall_time(0, 900) == 1000


def test_wall_time_zero_work():
    n = PeriodicNoise(100, 10)
    assert n.wall_time(0, 0) == 0


def test_wall_time_negative_work_rejected():
    with pytest.raises(ValueError):
        PeriodicNoise(100, 10).wall_time(0, -1)


def test_wall_time_work_between_events_not_inflated():
    n = PeriodicNoise(1000, 10)
    # Start just after the event at t=0; 980 ns of work finishes at 990,
    # before the next event at 1000.
    assert n.wall_time(10, 980) == 980


def test_null_noise_is_free():
    n = NullNoise()
    assert n.wall_time(123, 456) == 456
    assert n.stolen_between(0, 10**12) == 0
    assert n.events_in(0, 10**12) == []
    assert n.utilization == 0.0


# ---------------------------------------------------------------------------
# Property tests: the NoiseSource contract.
# ---------------------------------------------------------------------------

periodic_sources = st.builds(
    PeriodicNoise,
    period=st.integers(min_value=10, max_value=10_000),
    duration=st.integers(min_value=1, max_value=9),
    phase=st.integers(min_value=-10_000, max_value=10_000),
)


@given(n=periodic_sources,
       start=st.integers(min_value=0, max_value=100_000),
       span=st.integers(min_value=0, max_value=50_000))
@settings(max_examples=200)
def test_property_stolen_matches_event_view(n, start, span):
    """Closed-form stolen_between equals the merged event view."""
    from repro.noise import merge_busy_time
    end = start + span
    widened = start - n.max_event_duration()
    expected = merge_busy_time(n.events_in(widened, end), start, end)
    assert n.stolen_between(start, end) == expected


@given(n=periodic_sources,
       start=st.integers(min_value=0, max_value=100_000),
       a=st.integers(min_value=0, max_value=30_000),
       b=st.integers(min_value=0, max_value=30_000))
@settings(max_examples=200)
def test_property_stolen_is_additive(n, start, a, b):
    """stolen[s,m) + stolen[m,e) == stolen[s,e)."""
    mid = start + a
    end = mid + b
    assert (n.stolen_between(start, mid) + n.stolen_between(mid, end)
            == n.stolen_between(start, end))


@given(n=periodic_sources,
       start=st.integers(min_value=0, max_value=100_000),
       work=st.integers(min_value=0, max_value=100_000))
@settings(max_examples=200)
def test_property_wall_time_fixed_point(n, start, work):
    """wall_time returns the exact fixed point and never loses work."""
    t = n.wall_time(start, work)
    assert t >= work
    assert t - n.stolen_between(start, start + t) == work


@given(n=periodic_sources,
       start=st.integers(min_value=0, max_value=100_000),
       w1=st.integers(min_value=0, max_value=50_000),
       w2=st.integers(min_value=0, max_value=50_000))
@settings(max_examples=100)
def test_property_wall_time_monotone_in_work(n, start, w1, w2):
    lo, hi = sorted((w1, w2))
    assert n.wall_time(start, lo) <= n.wall_time(start, hi)


@given(n=periodic_sources,
       start=st.integers(min_value=0, max_value=100_000),
       span=st.integers(min_value=0, max_value=50_000))
@settings(max_examples=100)
def test_property_stolen_bounded_by_window(n, start, span):
    stolen = n.stolen_between(start, start + span)
    assert 0 <= stolen <= span
