"""System-level property tests (hypothesis).

These check invariants that unit tests can't pin down exhaustively:
random communication schedules always complete and preserve pairwise
order; every allreduce algorithm computes the same value; whole-machine
runs are bit-deterministic; trace capture/replay is lossless.
"""

import json
import os
import subprocess
import sys

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core import ExperimentConfig, Machine, MachineConfig, run_experiment
from repro.faults import FaultPlan, parse_faults
from repro.mpi import wait_all
from repro.noise import PeriodicNoise, PoissonNoise, TraceNoise
from repro.parallel import config_key, config_token
from repro.sim import MS, SEC, US

_slow = settings(max_examples=20, deadline=None,
                 suppress_health_check=[HealthCheck.too_slow])


# -- random point-to-point schedules -----------------------------------------------

@given(schedule=st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 4),
              st.integers(0, 2048)),
    min_size=1, max_size=30))
@_slow
def test_property_random_ptp_schedules_complete_in_order(schedule):
    """For any list of (src, dst, tag, size) sends — with matching
    receives posted — everything completes, and same-(pair, tag)
    messages arrive in send order."""
    m = Machine(MachineConfig(n_nodes=4))
    sends_by_rank = {r: [] for r in range(4)}
    recvs_by_rank = {r: [] for r in range(4)}
    for i, (src, dst, tag, size) in enumerate(schedule):
        sends_by_rank[src].append((dst, tag, size, i))
        recvs_by_rank[dst].append((src, tag, i))

    received = {r: [] for r in range(4)}

    def prog(ctx):
        reqs = [ctx.irecv(src, tag=tag)
                for src, tag, _i in recvs_by_rank[ctx.rank]]
        for dst, tag, size, i in sends_by_rank[ctx.rank]:
            yield from ctx.send(dst, size, tag=tag, payload=i)
        msgs = yield from wait_all(reqs)
        received[ctx.rank] = [(msg.src_rank, msg.tag, msg.payload)
                              for msg in msgs]

    m.run_to_completion(m.launch(prog))
    # Every message accounted for.
    total = sum(len(v) for v in received.values())
    assert total == len(schedule)
    # Non-overtaking per (src, dst, tag): payload indices increase.
    for dst, msgs in received.items():
        per_key = {}
        for src, tag, idx in msgs:
            per_key.setdefault((src, tag), []).append(idx)
        for key, idxs in per_key.items():
            assert idxs == sorted(idxs), (dst, key, idxs)


# -- allreduce algorithm equivalence -------------------------------------------------

@given(P=st.integers(2, 9),
       values=st.data())
@_slow
def test_property_allreduce_algorithms_agree(P, values):
    payloads = [values.draw(st.integers(-1000, 1000)) for _ in range(P)]
    expected = sum(payloads)
    for alg in ("recursive-doubling", "reduce-bcast", "ring"):
        m = Machine(MachineConfig(n_nodes=P))

        def prog(ctx, alg=alg):
            return (yield from ctx.allreduce(size=32, payload=payloads[ctx.rank],
                                             algorithm=alg))

        procs = m.launch(prog)
        m.run_to_completion(procs)
        assert [p.value for p in procs] == [expected] * P, alg


@given(P=st.integers(2, 8), root=st.data())
@_slow
def test_property_bcast_gather_roundtrip(P, root):
    r = root.draw(st.integers(0, P - 1))
    m = Machine(MachineConfig(n_nodes=P))

    def prog(ctx):
        data = list(range(10)) if ctx.rank == r else None
        got = yield from ctx.bcast(size=80, root=r, payload=data)
        back = yield from ctx.gather(size=8, root=r, payload=got[ctx.rank % 10])
        return back

    procs = m.launch(prog)
    m.run_to_completion(procs)
    assert procs[r].value == [rank % 10 for rank in range(P)]


# -- determinism across rebuilds ---------------------------------------------------------

@given(seed=st.integers(0, 2**20))
@settings(max_examples=10, deadline=None)
def test_property_runs_are_bit_deterministic(seed):
    cfg = ExperimentConfig(app="pop", nodes=6, noise_pattern="2.5pct@100Hz",
                           seed=seed,
                           app_params=dict(baroclinic_ns=500_000,
                                           solver_iterations=5,
                                           solver_compute_ns=5000,
                                           iterations=2))
    a = run_experiment(cfg)
    b = run_experiment(cfg)
    assert a.makespan_ns == b.makespan_ns
    assert (a.iteration_durations_ns == b.iteration_durations_ns).all()


# -- capture/replay losslessness ---------------------------------------------------------

@given(period=st.integers(1000, 100_000), duration=st.integers(1, 500),
       phase=st.integers(0, 100_000))
@settings(max_examples=50, deadline=None)
def test_property_periodic_capture_replay_exact(period, duration, phase):
    duration = min(duration, period - 1)
    src = PeriodicNoise(period, duration, phase=phase)
    window = 10 * period
    captured = src.events_in(0, window)
    if not captured:
        return
    # The last captured event may end just past the window; the replay
    # period must cover its tail.  Probes start after `duration` because
    # a capture beginning at t=0 cannot see the tail of an event that
    # started before the capture window (an inherent capture boundary).
    replay = TraceNoise(captured, repeat_every=window + duration)
    for a, b in [(duration, window), (window // 3, window // 2),
                 (window - period, window)]:
        assert replay.stolen_between(a, b) == src.stolen_between(a, b)


@given(seed=st.integers(0, 2**20))
@settings(max_examples=20, deadline=None)
def test_property_poisson_capture_replay_exact(seed):
    src = PoissonNoise(500, 20 * US, seed=seed)
    window = 1 * SEC
    captured = src.events_in(0, window)
    if not captured:
        return
    replay = TraceNoise(captured, repeat_every=window + 10 * src.max_event_duration())
    # Probes start past the capture boundary (an event that began
    # before t=0 cannot be captured, as with any real trace).
    tail = src.max_event_duration()
    probes = [(tail, window // 7), (window // 3, 2 * window // 3),
              (window - 50 * MS, window)]
    for a, b in probes:
        # Identical within the window except events whose tails cross
        # the capture boundary; probe interiors avoid that.
        assert replay.stolen_between(a, b) == src.stolen_between(a, b)


# -- iteration accounting closure -----------------------------------------------------------

@given(seed=st.integers(0, 2**16), n_iter=st.integers(2, 8))
@settings(max_examples=15, deadline=None)
def test_property_iteration_spans_tile_the_run(seed, n_iter):
    """Per-rank iteration intervals are contiguous and ordered."""
    from repro.apps import BSPApp
    m = Machine(MachineConfig(n_nodes=4, kernel="tuned-linux", seed=seed))
    app = BSPApp(work_ns=200_000, iterations=n_iter)
    m.run_to_completion(m.launch(app))
    for rank in range(4):
        spans = app.iteration_times[rank]
        assert len(spans) == n_iter
        for (s0, e0), (s1, e1) in zip(spans, spans[1:]):
            assert s0 <= e0 == s1 <= e1


# -- numpy payload integrity through collectives ----------------------------------------------

# -- FaultPlan seed-determinism ----------------------------------------------------------

@given(seed=st.integers(0, 2**20),
       rate=st.floats(0.05, 0.9),
       n_nodes=st.integers(1, 64),
       one_off=st.lists(
           st.tuples(st.integers(0, 63), st.integers(0, 10**9),
                     st.integers(1, 10**9)),
           max_size=4))
@_slow
def test_property_faultplan_same_seed_same_decisions(seed, rate, n_nodes,
                                                     one_off):
    """Two independently constructed plans with the same seed make
    identical per-node and per-message decisions — rebuild order, call
    order, and machine size never enter the derivation."""
    one_off = tuple((r % n_nodes, s, d) for r, s, d in one_off)
    mk = lambda: FaultPlan(drop_rate=min(rate, 0.99), slow_node_rate=rate,
                           slow_factor=0.5, one_off=one_off, seed=seed)
    a, b = mk(), mk()
    assert a.slow_nodes_for(n_nodes) == b.slow_nodes_for(n_nodes)
    # Calling twice on the same instance is just as stable (no hidden
    # draw-order state).
    assert a.slow_nodes_for(n_nodes) == a.slow_nodes_for(n_nodes)
    assert a.one_off_delays_for(n_nodes) == b.one_off_delays_for(n_nodes)
    for uid in ("p0/0", "p1/3", "p2/1"):
        assert a.drop_message(0, 1, uid) == b.drop_message(0, 1, uid)
    # Growing the machine never re-rolls the nodes both sizes contain.
    bigger = a.slow_nodes_for(n_nodes + 8)
    for node, factor in a.slow_nodes_for(n_nodes).items():
        assert bigger[node] == factor


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_property_parse_faults_roundtrip_deterministic(seed):
    """The same spec string parses to the same plan (and the same
    planted one-off schedule) on every call."""
    spec = "slow=0.3x0.5,one_off=3:5ms:1ms,one_off=0:0:250us"
    a, b = parse_faults(spec, seed=seed), parse_faults(spec, seed=seed)
    assert a == b
    assert a.one_off == ((3, 5_000_000, 1_000_000), (0, 0, 250_000))
    assert a.one_off_delays_for(8) == b.one_off_delays_for(8)
    assert a.slow_nodes_for(32) == b.slow_nodes_for(32)


def test_faultplan_decisions_identical_across_processes():
    """The slow-node map and one-off schedule are functions of the
    seed alone — a fresh interpreter with a different PYTHONHASHSEED
    must reproduce them exactly (nothing may route through hash())."""
    plan = FaultPlan(slow_node_rate=0.4, slow_factor=0.5,
                     one_off=((3, 5_000_000, 1_000_000),), seed=1234)
    local = {"slow": {str(k): v for k, v in plan.slow_nodes_for(24).items()},
             "one_off": {str(k): list(map(list, v))
                         for k, v in plan.one_off_delays_for(24).items()}}
    prog = (
        "import json\n"
        "from repro.faults import FaultPlan\n"
        "plan = FaultPlan(slow_node_rate=0.4, slow_factor=0.5,\n"
        "                 one_off=((3, 5_000_000, 1_000_000),), seed=1234)\n"
        "print(json.dumps({\n"
        "  'slow': {str(k): v for k, v in plan.slow_nodes_for(24).items()},\n"
        "  'one_off': {str(k): [list(d) for d in v]\n"
        "              for k, v in plan.one_off_delays_for(24).items()}}))\n")
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = "999"
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env["PYTHONPATH"] = src_dir
    out = subprocess.run([sys.executable, "-c", prog], env=env,
                         capture_output=True, text=True, check=True)
    assert json.loads(out.stdout) == local


# -- config_token canonicalisation -------------------------------------------------------

_token_keys = (st.integers(-5, 5) | st.text(max_size=4) | st.booleans())
_token_scalars = (st.none() | st.booleans() | st.integers(-10**6, 10**6)
                  | st.floats(allow_nan=False, allow_infinity=False)
                  | st.text(max_size=8))
_token_objects = st.recursive(
    _token_scalars,
    lambda children: (st.lists(children, max_size=4)
                      | st.dictionaries(_token_keys, children, max_size=4)),
    max_leaves=12)


def _reinsert_reversed(obj):
    """The same value with every dict's insertion order reversed."""
    if isinstance(obj, dict):
        return {k: _reinsert_reversed(v)
                for k, v in reversed(list(obj.items()))}
    if isinstance(obj, list):
        return [_reinsert_reversed(v) for v in obj]
    return obj


@given(obj=_token_objects)
@_slow
def test_property_config_token_is_order_stable_and_jsonable(obj):
    """Tokens are JSON-round-trippable and invariant under dict
    insertion-order permutation — the property the on-disk result
    cache's key stability rests on."""
    token = config_token(obj)
    # JSON round-trip must not lose information (the key is built from
    # the JSON encoding).
    encoded = json.dumps(token, sort_keys=True)
    assert json.loads(encoded) == json.loads(encoded)
    assert config_key(obj) == config_key(obj)
    assert config_key(obj) == config_key(_reinsert_reversed(obj))


@given(n=st.integers(-10**6, 10**6))
@_slow
def test_property_config_token_keeps_key_types(n):
    """Typed keys never collapse: {1: v} and {"1": v} (and int vs str
    members generally) must produce different cache keys."""
    assert config_key({n: "v"}) != config_key({str(n): "v"})
    assert config_key([n]) != config_key([str(n)])
    assert config_key({n, str(n)}) != config_key({str(n)})
    assert config_key((n,)) == config_key([n])  # seq shape, not type


# -- numpy payload integrity through collectives ----------------------------------------------

@given(P=st.integers(2, 6), n=st.integers(1, 16))
@_slow
def test_property_numpy_allreduce_exact(P, n):
    base = np.arange(n, dtype=np.int64)
    m = Machine(MachineConfig(n_nodes=P))

    def prog(ctx):
        return (yield from ctx.allreduce(size=8 * n,
                                         payload=base * (ctx.rank + 1)))

    procs = m.launch(prog)
    m.run_to_completion(procs)
    expected = base * (P * (P + 1) // 2)
    for p in procs:
        assert (p.value == expected).all()
