"""Tests for stochastic noise sources (Poisson, Bernoulli tick)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.noise import BernoulliTickNoise, PoissonNoise
from repro.sim import MS, SEC, US


def test_poisson_rate_is_respected():
    n = PoissonNoise(1000, 10 * US, seed=1)
    events = n.events_in(0, 10 * SEC)
    # 10k expected; Poisson sd = 100, allow 5 sigma.
    assert 9_500 <= len(events) <= 10_500


def test_poisson_determinism_same_seed():
    a = PoissonNoise(500, 20 * US, seed=7)
    b = PoissonNoise(500, 20 * US, seed=7)
    assert a.events_in(0, SEC) == b.events_in(0, SEC)


def test_poisson_different_seeds_differ():
    a = PoissonNoise(500, 20 * US, seed=7)
    b = PoissonNoise(500, 20 * US, seed=8)
    assert a.events_in(0, SEC) != b.events_in(0, SEC)


def test_poisson_window_stability():
    """Sub-window queries agree with the superset query."""
    n = PoissonNoise(2000, 5 * US, seed=3)
    full = n.events_in(0, SEC)
    lo, hi = 123_456_789, 456_789_123
    sub = n.events_in(lo, hi)
    assert sub == [e for e in full if lo <= e.start < hi]


def test_poisson_exponential_durations_capped():
    n = PoissonNoise(1000, 10 * US, seed=5, duration_dist="exponential",
                     max_duration=50 * US)
    events = n.events_in(0, SEC)
    assert events, "expected some events"
    assert all(1 <= e.duration <= 50 * US for e in events)
    assert len({e.duration for e in events}) > 1, "durations should vary"


def test_poisson_invalid_params():
    with pytest.raises(ConfigError):
        PoissonNoise(0, 10)
    with pytest.raises(ConfigError):
        PoissonNoise(100, 0)
    with pytest.raises(ConfigError):
        PoissonNoise(100, 10, duration_dist="weibull")
    with pytest.raises(ConfigError):
        PoissonNoise(1e9, 10)  # utilization >= 1


def test_poisson_empirical_utilization():
    n = PoissonNoise(100, 100 * US, seed=11)  # 1% nominal
    stolen = n.stolen_between(0, 10 * SEC)
    assert stolen / (10 * SEC) == pytest.approx(0.01, rel=0.3)


def test_bernoulli_tick_grid_alignment():
    n = BernoulliTickNoise(MS, 1 * US, 100 * US, 0.5, seed=2)
    events = n.events_in(0, 100 * MS)
    assert len(events) == 100
    assert all(e.start % MS == 0 for e in events)


def test_bernoulli_tick_heavy_mix():
    n = BernoulliTickNoise(MS, 1 * US, 100 * US, 0.3, seed=2)
    events = n.events_in(0, SEC)
    heavy = sum(1 for e in events if e.duration == 100 * US)
    assert 200 <= heavy <= 400  # ~300 expected of 1000


def test_bernoulli_tick_probability_extremes():
    all_heavy = BernoulliTickNoise(MS, 1 * US, 100 * US, 1.0, seed=2)
    assert all(e.duration == 100 * US for e in all_heavy.events_in(0, 50 * MS))
    none_heavy = BernoulliTickNoise(MS, 1 * US, 100 * US, 0.0, seed=2)
    assert all(e.duration == 1 * US for e in none_heavy.events_in(0, 50 * MS))


def test_bernoulli_tick_utilization_formula():
    n = BernoulliTickNoise(MS, 1 * US, 101 * US, 0.25, seed=2)
    assert n.utilization == pytest.approx((0.75 * 1 + 0.25 * 101) / 1000)


def test_bernoulli_invalid_params():
    with pytest.raises(ConfigError):
        BernoulliTickNoise(0, 1, 10, 0.5)
    with pytest.raises(ConfigError):
        BernoulliTickNoise(MS, 1, 10, 1.5)
    with pytest.raises(ConfigError):
        BernoulliTickNoise(MS, 100, 10, 0.5)  # heavy < base
    with pytest.raises(ConfigError):
        BernoulliTickNoise(MS, 1, MS, 0.5)  # heavy >= period


@given(seed=st.integers(min_value=0, max_value=2**31),
       start=st.integers(min_value=0, max_value=10 * SEC),
       span=st.integers(min_value=0, max_value=50 * MS))
@settings(max_examples=50, deadline=None)
def test_property_poisson_wall_time_fixed_point(seed, start, span):
    n = PoissonNoise(300, 50 * US, seed=seed)
    t = n.wall_time(start, span)
    assert t >= span
    assert t - n.stolen_between(start, start + t) == span


@given(seed=st.integers(min_value=0, max_value=2**31),
       start=st.integers(min_value=0, max_value=10 * SEC),
       a=st.integers(min_value=0, max_value=20 * MS),
       b=st.integers(min_value=0, max_value=20 * MS))
@settings(max_examples=50, deadline=None)
def test_property_poisson_stolen_additive(seed, start, a, b):
    n = PoissonNoise(300, 50 * US, seed=seed)
    mid, end = start + a, start + a + b
    assert (n.stolen_between(start, mid) + n.stolen_between(mid, end)
            == n.stolen_between(start, end))
