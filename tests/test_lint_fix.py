"""Fixer-layer tests: ``repro lint --fix`` / ``--diff`` / ``--suppress``.

The contract under test: fixes are exact byte-span patches (asserted
byte-for-byte, not just "re-lints clean"), a second ``--fix`` pass is a
no-op, ``--diff`` writes nothing, and the FIXERS table stays in sync
with the ``fixable`` flags the catalog advertises.
"""

import io
import textwrap
from pathlib import Path

from repro.lint.cli import main as lint_main
from repro.lint.engine import lint_paths
from repro.lint.fixes import FIXERS, apply_patches, fix_tree, Patch
from repro.lint.rules import rule_catalog

DET003_BEFORE = """\
def emit(env, a, b):
    for n in set(a) | set(b):
        env.schedule(n)
"""

DET003_AFTER = """\
def emit(env, a, b):
    for n in sorted(set(a) | set(b)):
        env.schedule(n)
"""

DET005_BEFORE = """\
def total(xs):
    return sum(set(xs))
"""

DET005_AFTER = """\
def total(xs):
    return sum(sorted(set(xs)))
"""

# repro/sim/core.py is a hot-path module, so PERF001 applies.
SLOTS_BEFORE = '''\
class Event:
    """One scheduled occurrence."""

    def __init__(self, env, value):
        self.env = env
        self.value = value
'''

SLOTS_AFTER = '''\
class Event:
    """One scheduled occurrence."""

    __slots__ = ("env", "value")

    def __init__(self, env, value):
        self.env = env
        self.value = value
'''


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    root = tmp_path / "repro"
    for rel, src in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
    return root


def fixture_tree(tmp_path: Path) -> Path:
    return make_tree(tmp_path, {
        "sim/iterorder.py": DET003_BEFORE,
        "sim/accum.py": DET005_BEFORE,
        "sim/core.py": SLOTS_BEFORE,
    })


def _cli(*argv):
    out = io.StringIO()
    code = lint_main(list(argv), out)
    return code, out.getvalue()


# -- byte-exact rewrites ----------------------------------------------------

def test_fix_is_byte_exact(tmp_path):
    root = fixture_tree(tmp_path)
    result = fix_tree([root])
    assert result.changed_files == 3 and result.patches == 3
    assert (root / "sim/iterorder.py").read_text() == DET003_AFTER
    assert (root / "sim/accum.py").read_text() == DET005_AFTER
    assert (root / "sim/core.py").read_text() == SLOTS_AFTER
    assert lint_paths([root]).clean


def test_fix_is_idempotent(tmp_path):
    root = fixture_tree(tmp_path)
    fix_tree([root])
    again = fix_tree([root])
    assert again.patches == 0 and again.changed_files == 0
    assert (root / "sim/iterorder.py").read_text() == DET003_AFTER


def test_diff_previews_without_writing(tmp_path):
    root = fixture_tree(tmp_path)
    result = fix_tree([root], write=False)
    assert result.changed_files == 3
    assert (root / "sim/iterorder.py").read_text() == DET003_BEFORE
    diff = result.diffs["repro/sim/iterorder.py"]
    assert "-    for n in set(a) | set(b):" in diff
    assert "+    for n in sorted(set(a) | set(b)):" in diff


def test_single_slot_gets_trailing_comma(tmp_path):
    root = make_tree(tmp_path, {"sim/core.py": textwrap.dedent("""\
        class Tick:
            def __init__(self, when):
                self.when = when
    """)})
    fix_tree([root])
    assert '__slots__ = ("when",)' in (root / "sim/core.py").read_text()


def test_fixers_match_the_advertised_fixable_flags():
    advertised = {r["id"] for r in rule_catalog() if r["fixable"]}
    assert set(FIXERS) == advertised
    assert advertised == {"DET003", "DET005", "PERF001"}


def test_apply_patches_is_order_independent():
    src = "abcdef"
    patches = [Patch(0, 1, "X"), Patch(3, 4, "Y")]
    assert apply_patches(src, patches) == "XbcYef"
    assert apply_patches(src, list(reversed(patches))) == "XbcYef"


# -- suppression insertion --------------------------------------------------

def test_suppress_round_trip(tmp_path):
    root = make_tree(tmp_path, {"sim/clocky.py": (
        "import time\n"
        "def stamp():\n"
        "    return time.time()\n")})
    result = fix_tree([root], suppress=("DET001",))
    assert result.patches == 1
    line = (root / "sim/clocky.py").read_text().splitlines()[2]
    assert line.endswith("# detlint: disable=DET001 -- TODO: justify")
    report = lint_paths([root])
    assert report.clean and report.suppressed == 1


def test_suppress_does_not_stack_on_existing_comments(tmp_path):
    root = make_tree(tmp_path, {"sim/clocky.py": (
        "import time\n"
        "t = time.time()  # detlint: disable=DET003 -- wrong rule\n")})
    result = fix_tree([root], suppress=("DET001",))
    assert result.patches == 0  # the line already carries a marker


# -- CLI entry points -------------------------------------------------------

def test_cli_diff_is_a_pure_preview(tmp_path):
    root = fixture_tree(tmp_path)
    code, text = _cli(str(root), "--no-baseline", "--diff")
    assert code == 0
    assert "--- a/repro/sim/iterorder.py" in text
    assert "nothing written" in text
    assert (root / "sim/iterorder.py").read_text() == DET003_BEFORE


def test_cli_fix_rewrites_and_exits_clean(tmp_path):
    root = fixture_tree(tmp_path)
    code, text = _cli(str(root), "--no-baseline", "--fix")
    assert code == 0
    assert "applied 3 fix(es) in 3 file(s)" in text
    assert (root / "sim/core.py").read_text() == SLOTS_AFTER


def test_cli_fix_exit_reflects_unfixable_leftovers(tmp_path):
    root = make_tree(tmp_path, {"sim/mixed.py": (
        "import random\n"          # DET002: not mechanically fixable
        "def emit(env, a):\n"
        "    for n in set(a):\n"   # DET003: fixable
        "        env.schedule(n)\n")})
    code, text = _cli(str(root), "--no-baseline", "--fix")
    assert code == 1 and "DET002" in text
    assert "sorted(set(a))" in (root / "sim/mixed.py").read_text()


def test_cli_suppress_requires_fix_or_diff(tmp_path):
    root = fixture_tree(tmp_path)
    assert _cli(str(root), "--suppress", "DET001")[0] == 2
    assert _cli(str(root), "--no-baseline", "--diff",
                "--suppress", "NOPE42")[0] == 2
