"""Golden-report regression tests.

Each golden file under ``tests/golden/`` is the exact ``render()``
output of one experiment at small scale with telemetry off.  Any
byte-level drift — a reordered row, a rounding change, telemetry
leaking into the default report — fails with a unified diff.

When a change is *intentional*, regenerate the goldens::

    PYTHONPATH=src python -m pytest tests/test_golden_reports.py --regen-golden
"""

import difflib
import pathlib

import pytest

from repro.harness import run_experiment

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: golden file stem -> (experiment id, scale).
GOLDENS = {
    "e1_small": ("E1", "small"),
    "e2_small": ("E2", "small"),
    "e3_small": ("E3", "small"),
    "e5_small": ("E5", "small"),
    "e6_small": ("E6", "small"),
    "e15_small": ("E15", "small"),
    "e16_small": ("E16", "small"),
    "e17_small": ("E17", "small"),
    "e20_small": ("E20", "small"),
}


@pytest.mark.parametrize("stem", sorted(GOLDENS))
def test_report_matches_golden(stem, request):
    experiment_id, scale = GOLDENS[stem]
    actual = run_experiment(experiment_id, scale).render()
    path = GOLDEN_DIR / f"{stem}.txt"

    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(actual)
        return

    if not path.exists():
        pytest.fail(f"golden file {path} is missing; generate it with "
                    f"--regen-golden")
    expected = path.read_text()
    if actual != expected:
        diff = "".join(difflib.unified_diff(
            expected.splitlines(keepends=True),
            actual.splitlines(keepends=True),
            fromfile=f"golden/{stem}.txt", tofile="current output"))
        pytest.fail(
            f"{experiment_id} ({scale}) report drifted from its golden "
            f"copy.\n{diff}\nIf this change is intentional, rerun with "
            f"--regen-golden to update the golden files.")
