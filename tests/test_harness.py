"""Tests for the experiment harness plumbing (fast experiments only —
the full E1–E10 suite runs under benchmarks/)."""

import pytest

from repro.errors import ConfigError
from repro.harness import (
    EXPERIMENTS,
    ExperimentReport,
    experiment_ids,
    render_markdown,
    render_summary,
    run_experiment,
)


def test_registry_is_complete():
    assert experiment_ids() == [f"E{i}" for i in range(1, 18)] + ["E20"]
    for eid, (title, fn) in EXPERIMENTS.items():
        assert title
        assert callable(fn)


def test_unknown_experiment_rejected():
    with pytest.raises(ConfigError):
        run_experiment("E99")


def test_invalid_scale_rejected():
    with pytest.raises(ConfigError):
        run_experiment("E1", "enormous")


def test_report_rendering_roundtrip():
    rep = ExperimentReport("EX", "demo", ["a", "b"], [[1, 2], [3, 4]],
                           checks={"ok": True, "bad": False},
                           findings={"k": 7}, notes="note")
    assert not rep.passed
    assert rep.failed_checks() == ["bad"]
    text = rep.render()
    assert "EX: demo" in text
    assert "[PASS] ok" in text
    assert "[FAIL] bad" in text
    assert "k: 7" in text
    assert "a,b" in rep.csv()


def test_e6_runs_and_passes_small():
    rep = run_experiment("E6", "small")
    assert rep.passed, rep.failed_checks()
    assert rep.experiment_id == "E6"
    assert rep.rows


def test_e1_runs_and_passes_small():
    rep = run_experiment("E1", "small")
    assert rep.passed, rep.failed_checks()


def test_render_summary_and_markdown():
    reps = {"E1": ExperimentReport("E1", "one", ["h"], [[1]],
                                   checks={"c": True}),
            "E2": ExperimentReport("E2", "two", ["h"], [[2]],
                                   checks={"c": False})}
    summary = render_summary(reps)
    assert "E1" in summary and "PASS" in summary and "FAIL" in summary
    md = render_markdown(reps)
    assert "## E1 — one" in md
    assert "- [x] c" in md
    assert "- [ ] c" in md
