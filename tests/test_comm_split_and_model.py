"""Tests for communicator split/dup, the sampled absorption model, and
the characterize CLI."""

import io

import pytest

from repro.analysis import (
    expected_max_wall,
    expected_max_wall_sampled,
    sampled_wall_times,
)
from repro.cli import main as cli_main
from repro.core import Machine, MachineConfig
from repro.errors import ConfigError, MPIError
from repro.noise import BurstNoise, PeriodicNoise, PoissonNoise
from repro.sim import MS, US


# -- communicator split / dup --------------------------------------------------

def test_split_by_parity():
    m = Machine(MachineConfig(n_nodes=6))
    comms = m.mpi.split(m.mpi.world, [r % 2 for r in range(6)])
    assert set(comms) == {0, 1}
    assert comms[0].node_of_rank == (0, 2, 4)
    assert comms[1].node_of_rank == (1, 3, 5)


def test_split_with_keys_reorders():
    m = Machine(MachineConfig(n_nodes=4))
    comms = m.mpi.split(m.mpi.world, [0, 0, 0, 0], keys=[3, 2, 1, 0])
    assert comms[0].node_of_rank == (3, 2, 1, 0)


def test_split_negative_color_excludes():
    m = Machine(MachineConfig(n_nodes=4))
    comms = m.mpi.split(m.mpi.world, [0, -1, 0, -1])
    assert comms[0].node_of_rank == (0, 2)
    assert len(comms) == 1


def test_split_validates_lengths():
    m = Machine(MachineConfig(n_nodes=4))
    with pytest.raises(MPIError):
        m.mpi.split(m.mpi.world, [0, 1])
    with pytest.raises(MPIError):
        m.mpi.split(m.mpi.world, [0] * 4, keys=[0])


def test_split_groups_communicate_independently():
    m = Machine(MachineConfig(n_nodes=4))
    comms = m.mpi.split(m.mpi.world, [0, 1, 0, 1])

    def prog(ctx):
        return (yield from ctx.allreduce(size=8, payload=ctx.node_id))

    procs = []
    for comm in comms.values():
        procs.extend(m.launch(prog, comm=comm))
    m.run_to_completion(procs)
    values = [p.value for p in procs]
    assert values == [0 + 2, 0 + 2, 1 + 3, 1 + 3]


def test_dup_isolates_matching_scope():
    m = Machine(MachineConfig(n_nodes=2))
    dup = m.mpi.dup(m.mpi.world)
    assert dup.comm_id != m.mpi.world.comm_id
    assert dup.node_of_rank == m.mpi.world.node_of_rank

    def sender(ctx_w, ctx_d):
        yield from ctx_d.send(1, size=0, payload="dup")
        yield from ctx_w.send(1, size=0, payload="world")

    def receiver(ctx_w, ctx_d):
        w = yield from ctx_w.recv(0)
        d = yield from ctx_d.recv(0)
        return (w.payload, d.payload)

    p0 = m.env.process(sender(m.mpi.rank_context(0),
                              m.mpi.rank_context(0, dup)))
    p1 = m.env.process(receiver(m.mpi.rank_context(1),
                                m.mpi.rank_context(1, dup)))
    m.run_to_completion([p0, p1])
    assert p1.value == ("world", "dup")


# -- sampled absorption model -----------------------------------------------------

def test_sampled_matches_closed_form_for_periodic():
    src = PeriodicNoise.from_utilization(0.025, 100)
    closed = expected_max_wall(32, 1 * MS, src.period, src.duration)
    sampled = expected_max_wall_sampled(src, 32, 1 * MS, n_windows=4096,
                                        horizon_ns=src.period * 37)
    assert sampled == pytest.approx(closed, rel=0.02)


def test_sampled_model_handles_poisson_and_burst():
    for src in (PoissonNoise(100, 250 * US, seed=5),
                BurstNoise(10 * MS, 50 * US, 5, 5 * US)):
        walls = sampled_wall_times(src, 1 * MS, n_windows=512)
        assert walls.min() >= 1 * MS
        emax = expected_max_wall_sampled(src, 64, 1 * MS, n_windows=512)
        assert emax >= walls.mean()


def test_sampled_model_validation():
    src = PeriodicNoise(1000, 10)
    with pytest.raises(ConfigError):
        sampled_wall_times(src, -1)
    with pytest.raises(ConfigError):
        sampled_wall_times(src, 100, n_windows=0)


def test_sampled_max_grows_with_p():
    src = PeriodicNoise.from_utilization(0.025, 10)
    e4 = expected_max_wall_sampled(src, 4, 1 * MS, n_windows=1024)
    e256 = expected_max_wall_sampled(src, 256, 1 * MS, n_windows=1024)
    assert e256 > e4


# -- characterize CLI --------------------------------------------------------------

def test_cli_characterize_quiet_kernel():
    out = io.StringIO()
    code = cli_main(["characterize", "--kernel", "lightweight",
                     "--nodes", "2", "--seconds", "0.5"], out=out)
    assert code == 0
    text = out.getvalue()
    assert "0.000% CPU lost" in text
    assert "none (flat)" in text


def test_cli_characterize_noisy_kernel():
    out = io.StringIO()
    code = cli_main(["characterize", "--kernel", "tuned-linux",
                     "--nodes", "2", "--seconds", "1.0",
                     "--pattern", "1pct@10Hz"], out=out)
    assert code == 0
    text = out.getvalue()
    assert "detours" in text
    assert "PSNAP fleet" in text


def test_cli_sweep_table_and_csv(tmp_path):
    out = io.StringIO()
    csv_path = tmp_path / "sweep.csv"
    code = cli_main(["sweep", "--app", "bsp", "--nodes", "2,4",
                     "--patterns", "quiet,2.5pct@100Hz", "--seed", "1",
                     "--csv", str(csv_path)], out=out)
    assert code == 0
    text = out.getvalue()
    assert "sweep: bsp" in text
    assert "2.5pct@100Hz" in text
    lines = csv_path.read_text().splitlines()
    assert len(lines) == 5  # header + 4 points
