"""Cross-node dependency recorder and critical-path attribution tests.

Covers the E16 tentpole machinery end to end: recording is passive and
deterministic, the backward walk telescopes exactly to the makespan,
planted noise is charged to the right source on the right node,
results survive the process-pool round trip bit-identically, and the
exported trace carries structurally valid send→recv flow events.
"""

from dataclasses import replace

import pytest

from repro import obs
from repro.apps import BSPApp
from repro.core import (
    ExperimentConfig,
    Machine,
    MachineConfig,
    run_experiment,
)
from repro.errors import ConfigError
from repro.noise import PeriodicNoise
from repro.obs.critpath import (
    SOURCE_COMPUTE,
    SOURCE_NETWORK,
    SOURCE_RETRY,
    compute_critical_path,
    diff_critical_paths,
    format_critical_path,
    format_diff,
)
from repro.parallel import SweepExecutor


def _recorded_machine(n_nodes=6, seed=9, *, kernel="lightweight",
                      ghost_node=None, iterations=8, work_ns=200_000,
                      collective="allreduce"):
    machine = Machine(MachineConfig(n_nodes=n_nodes, kernel=kernel,
                                    seed=seed, critical_path=True))
    if ghost_node is not None:
        machine.nodes[ghost_node].add_noise_source(
            PeriodicNoise(120_000, 15_000, name="ghost"))
    app = BSPApp(work_ns=work_ns, iterations=iterations,
                 collective=collective)
    machine.run_to_completion(machine.launch(app))
    return machine, app


# -- recorder basics ------------------------------------------------------------


def test_recorder_off_by_default():
    machine = Machine(MachineConfig(n_nodes=2))
    assert machine.critpath is None
    with pytest.raises(ConfigError):
        machine.critical_path()


def test_recorder_via_process_wide_switch():
    obs.configure(critical_path=True)
    machine = Machine(MachineConfig(n_nodes=2))
    assert machine.critpath is not None
    obs.disable()
    assert Machine(MachineConfig(n_nodes=2)).critpath is None


def test_recording_is_passive():
    """Makespan, iteration timings, and event counts are identical
    with the recorder on and off."""
    cfg = ExperimentConfig(app="bsp", nodes=8, noise_pattern="2.5pct@100Hz",
                           kernel="commodity-linux", seed=4,
                           app_params={"iterations": 6, "work_ns": 150_000})
    off = run_experiment(cfg)
    on = run_experiment(replace(cfg, critical_path=True))
    assert off.makespan_ns == on.makespan_ns
    assert (off.iteration_durations_ns == on.iteration_durations_ns).all()
    assert off.events_processed == on.events_processed
    assert "critical_path" not in off.meta
    assert "critical_path" in on.meta


def test_edge_set_deterministic_across_repeats():
    sigs, dicts = [], []
    for _ in range(2):
        machine, _app = _recorded_machine(seed=13)
        sigs.append(machine.critpath.edge_signature())
        dicts.append(machine.critical_path().as_dict())
    assert sigs[0] == sigs[1]
    assert dicts[0] == dicts[1]
    assert len(sigs[0]) > 0


def test_completion_and_start_tracking():
    machine, _app = _recorded_machine(n_nodes=3, iterations=2)
    rec = machine.critpath
    assert sorted(rec.starts) == [0, 1, 2]
    assert sorted(rec.completions) == [0, 1, 2]
    assert all(rec.completions[n] >= rec.starts[n] for n in rec.starts)


# -- backward walk ---------------------------------------------------------------


def test_segments_telescope_to_makespan():
    machine, app = _recorded_machine(kernel="commodity-linux", seed=21)
    cp = machine.critical_path()
    assert cp.total_ns == cp.end_ns - cp.origin_ns == app.makespan_ns()
    # Segments are contiguous in time (walk output is time-ordered).
    for a, b in zip(cp.segments, cp.segments[1:]):
        assert a.end == b.start
    # by_source decomposes the same total (charges partition segments).
    assert sum(cp.by_source.values()) >= cp.total_ns


def test_quiet_lightweight_charges_zero_noise():
    machine, _app = _recorded_machine(kernel="lightweight")
    cp = machine.critical_path()
    assert cp.noise_ns == 0
    assert set(cp.by_source) <= {SOURCE_COMPUTE, SOURCE_NETWORK,
                                 SOURCE_RETRY}


def test_planted_ghost_charged_on_planted_node():
    quiet_machine, quiet_app = _recorded_machine(seed=5)
    noisy_machine, noisy_app = _recorded_machine(seed=5, ghost_node=2)
    quiet = quiet_machine.critical_path()
    noisy = noisy_machine.critical_path()
    gap = noisy_app.makespan_ns() - quiet_app.makespan_ns()
    assert gap > 0
    ghost = noisy.charged_ns("ghost")
    assert ghost >= 0.9 * gap
    # Localization: every ghost ns on node 2.
    assert noisy.by_node[2].get("ghost", 0) == ghost
    for node, charges in noisy.by_node.items():
        if node != 2:
            assert "ghost" not in charges


def test_fault_retries_appear_on_path():
    cfg = ExperimentConfig(app="bsp", nodes=8, noise_pattern="quiet",
                           kernel="lightweight", seed=5, critical_path=True,
                           faults="drop=0.05,timeout=200us",
                           app_params={"iterations": 8,
                                       "work_ns": 100_000})
    res = run_experiment(cfg)
    cp = res.meta["critical_path"]
    assert cp["total_ns"] == res.makespan_ns
    assert cp["n_retry_hops"] > 0
    assert cp["by_source"].get(SOURCE_RETRY, 0) > 0


def test_compute_critical_path_requires_completed_run():
    machine = Machine(MachineConfig(n_nodes=2, critical_path=True))
    with pytest.raises(ConfigError):
        compute_critical_path(machine.critpath)


# -- diff + formatting -----------------------------------------------------------


def _cp_pair(seed=5):
    quiet_machine, _ = _recorded_machine(seed=seed)
    noisy_machine, _ = _recorded_machine(seed=seed, ghost_node=2)
    return (quiet_machine.critical_path().as_dict(),
            noisy_machine.critical_path().as_dict())


def test_diff_names_the_ghost():
    quiet, noisy = _cp_pair()
    diff = diff_critical_paths(quiet, noisy)
    assert diff["top_thief"] == "ghost"
    assert diff["gap_ns"] == noisy["total_ns"] - quiet["total_ns"]
    assert diff["noise_delta_ns"] == noisy["noise_ns"]
    assert diff["noise_share_of_gap"] >= 0.9


def test_formatters_render():
    quiet, noisy = _cp_pair()
    text = format_critical_path(noisy)
    assert "critical path:" in text
    assert "ghost" in text
    diff_text = format_diff(diff_critical_paths(quiet, noisy))
    assert "top thief: ghost" in diff_text


def test_as_dict_round_trips_through_json():
    import json

    _quiet, noisy = _cp_pair()
    assert json.loads(json.dumps(noisy)) == noisy


# -- parallel execution ----------------------------------------------------------


def test_critical_path_identical_serial_vs_workers():
    cfg = ExperimentConfig(app="bsp", nodes=6,
                           noise_pattern="2.5pct@100Hz",
                           kernel="commodity-linux", seed=17,
                           critical_path=True,
                           app_params={"iterations": 5,
                                       "work_ns": 120_000})
    configs = {"pt": cfg}
    serial, _ = SweepExecutor(workers=1).run_configs(configs)
    pooled, _ = SweepExecutor(workers=2).run_configs(configs)
    assert serial["pt"].meta["critical_path"] == \
        pooled["pt"].meta["critical_path"]
    assert serial["pt"].meta["critical_path"]["total_ns"] == \
        serial["pt"].makespan_ns


# -- flow events -----------------------------------------------------------------


def _flow_trace(categories=("net", "net.flow")):
    obs.configure(trace=True, trace_categories=categories)
    cfg = ExperimentConfig(app="bsp", nodes=4, noise_pattern="quiet",
                           kernel="lightweight", seed=1,
                           app_params={"iterations": 3,
                                       "work_ns": 50_000})
    run_experiment(cfg)
    from repro.obs import runtime as _rt
    doc = _rt.tracer().to_chrome()
    obs.disable()
    return doc["traceEvents"]


def test_flow_events_structurally_valid():
    events = _flow_trace()
    starts = [e for e in events if e["ph"] == "s"]
    finishes = [e for e in events if e["ph"] == "f"]
    assert starts, "no flow events recorded"
    # Every flow start has exactly one matching finish; ids unique.
    sids = [e["id"] for e in starts]
    fids = [e["id"] for e in finishes]
    assert len(set(sids)) == len(sids)
    assert sorted(sids) == sorted(fids)
    by_id = {e["id"]: e for e in starts}
    for fin in finishes:
        assert fin["bp"] == "e"
        assert fin["cat"] == "net.flow"
        assert fin["ts"] >= by_id[fin["id"]]["ts"]


def test_flow_events_respect_category_gate():
    events = _flow_trace(categories=("net",))
    assert not [e for e in events if e["ph"] in ("s", "f")]


def test_per_node_thread_names_present():
    events = _flow_trace()
    names = {e["args"]["name"] for e in events
             if e["ph"] == "M" and e["name"] == "thread_name"}
    assert {"node 0", "node 1", "node 2", "node 3"} <= names


def test_flow_trace_deterministic():
    import json

    first = json.dumps([e for e in _flow_trace()
                        if e["ph"] in ("s", "f")], sort_keys=True)
    second = json.dumps([e for e in _flow_trace()
                         if e["ph"] in ("s", "f")], sort_keys=True)
    assert first == second


def test_flow_ids_unique_across_machines_sharing_tracer():
    # A compare run traces the quiet and noisy machine into the same
    # document; ids must not restart per machine (the tracer, not the
    # network, owns the counter).
    obs.configure(trace=True, trace_categories=("net", "net.flow"))
    cfg = ExperimentConfig(app="bsp", nodes=4, noise_pattern="quiet",
                           kernel="lightweight", seed=1,
                           app_params={"iterations": 3,
                                       "work_ns": 50_000})
    run_experiment(cfg)
    run_experiment(cfg)
    from repro.obs import runtime as _rt
    events = _rt.tracer().to_chrome()["traceEvents"]
    obs.disable()
    sids = [e["id"] for e in events if e["ph"] == "s"]
    fids = [e["id"] for e in events if e["ph"] == "f"]
    assert sids and len(set(sids)) == len(sids)
    assert sorted(sids) == sorted(fids)


# -- E16 experiment ---------------------------------------------------------------


def test_e16_small_passes():
    from repro.harness import run_experiment as harness_run
    report = harness_run("E16", "small")
    assert report.passed, report.failed_checks()
    assert report.findings["ghost_share_of_gap"] >= 0.9
