"""Tests for merged timelines, app phase instrumentation, per-node CPU
speed (sick nodes), and observer export helpers."""

import pytest

from repro.apps import BSPApp, POPLikeApp
from repro.core import Machine, MachineConfig
from repro.errors import ConfigError
from repro.kernel import CPU
from repro.ktau import (
    KtauTracer,
    build_app_profile,
    merged_timeline,
    timeline_text,
)
from repro.ktau.export import intervals_to_rows, profile_to_csv, profile_to_rows, trace_to_rows
from repro.ktau.profile import build_kernel_profile
from repro.microbench import PSNAPBenchmark
from repro.noise import InjectionPlan, NullNoise
from repro.sim import Environment, MS


def _observed_pop(n=4, seed=2):
    m = Machine(MachineConfig(n_nodes=n, kernel="tuned-linux",
                              injection=InjectionPlan("2.5pct@100Hz",
                                                      seed=seed),
                              seed=seed))
    tr = KtauTracer(m)
    app = POPLikeApp(baroclinic_ns=2 * MS, solver_iterations=10,
                     solver_compute_ns=10_000, iterations=3).bind_tracer(tr)
    m.run_to_completion(m.launch(app))
    return m, tr, app


# -- phase instrumentation --------------------------------------------------------

def test_pop_emits_phase_intervals():
    m, tr, app = _observed_pop()
    profs = build_app_profile(tr, 0)
    assert set(profs) == {"pop:iteration", "pop:baroclinic", "pop:barotropic"}
    assert profs["pop:baroclinic"].count == 3
    assert profs["pop:barotropic"].count == 3


def test_phases_nest_inside_iterations():
    m, tr, app = _observed_pop()
    iters = tr.app_intervals(0, "pop:iteration")
    for phase_name in ("pop:baroclinic", "pop:barotropic"):
        for phase in tr.app_intervals(0, phase_name):
            assert any(it.start <= phase.start and phase.end <= it.end
                       for it in iters), phase_name


def test_solver_phase_more_noise_sensitive():
    """The barotropic (allreduce-storm) phase has a higher noise share
    than the baroclinic compute — the observer sees POP's soft spot."""
    m, tr, app = _observed_pop(seed=7)
    profs = build_app_profile(tr, 0)
    # Communication-driven interference concentrates in the solver.
    assert (profs["pop:barotropic"].stolen_by_kind.get("softirq", 0)
            > profs["pop:baroclinic"].stolen_by_kind.get("softirq", 0))


def test_phase_without_tracer_is_noop():
    m = Machine(MachineConfig(n_nodes=2))
    app = POPLikeApp(baroclinic_ns=100_000, solver_iterations=2,
                     solver_compute_ns=1000, iterations=2)
    m.run_to_completion(m.launch(app))  # must not raise
    assert app.makespan_ns() > 0


# -- merged timeline ------------------------------------------------------------------

def test_timeline_orders_and_nests():
    m, tr, app = _observed_pop()
    entries = merged_timeline(tr, 0, 0, m.env.now)
    times = [e.time for e in entries]
    assert times == sorted(times)
    by_label = {}
    for e in entries:
        by_label.setdefault(e.label, e)
    # Outer iteration at depth 0; nested phases deeper.
    assert by_label["pop:iteration"].depth == 0
    assert by_label["pop:baroclinic"].depth == 1
    # Kernel events present.
    assert any(e.kind == "interrupt" for e in entries)


def test_timeline_window_filters():
    m, tr, app = _observed_pop()
    first_iter = tr.app_intervals(0, "pop:iteration")[0]
    entries = merged_timeline(tr, 0, first_iter.start, first_iter.end)
    labels = {e.label for e in entries if e.kind == "app"}
    assert "pop:iteration" in labels
    # Later iterations excluded.
    app_entries = [e for e in entries if e.label == "pop:iteration"]
    assert len(app_entries) == 1


def test_timeline_text_renders_and_truncates():
    m, tr, app = _observed_pop()
    text = timeline_text(tr, 0, 0, m.env.now, max_rows=5)
    assert "timeline node 0" in text
    assert "more entries" in text
    assert len(text.splitlines()) <= 7


# -- export helpers ----------------------------------------------------------------------

def test_profile_export_rows_and_csv():
    m, tr, app = _observed_pop()
    prof = build_kernel_profile(tr, 0, 0, m.env.now)
    rows = profile_to_rows(prof)
    assert rows
    assert {"node", "source", "kind", "count", "total_ns"} <= set(rows[0])
    csv = profile_to_csv(prof)
    assert csv.splitlines()[0].startswith("node,source,kind")
    assert len(csv.splitlines()) == len(rows) + 1


def test_profile_csv_empty_profile_is_header_only():
    from repro.ktau.profile import NodeKernelProfile
    prof = NodeKernelProfile(node=3, window_start=0, window_end=1000,
                             entries=())
    csv = profile_to_csv(prof)
    assert csv == ("node,source,kind,count,total_ns,mean_ns,min_ns,"
                   "max_ns,pct_of_window\n")
    assert profile_to_rows(prof) == []


def test_profile_rows_zero_and_reversed_window_pct():
    from repro.ktau.profile import NodeKernelProfile, ProfileEntry
    entry = ProfileEntry(source="timer-irq", kind="interrupt", count=2,
                         total_ns=500, min_ns=200, max_ns=300)
    for start, end in ((100, 100), (200, 100)):
        prof = NodeKernelProfile(node=0, window_start=start,
                                 window_end=end, entries=(entry,))
        rows = profile_to_rows(prof)
        assert rows[0]["pct_of_window"] == 0.0
        assert rows[0]["total_ns"] == 500
    # Header columns match populated-row key order.
    csv = profile_to_csv(prof)
    header = csv.splitlines()[0].split(",")
    assert header == list(rows[0].keys())


def test_trace_to_rows_reversed_window_is_empty():
    m, tr, app = _observed_pop()
    assert trace_to_rows(tr, 0, 5 * MS, 0) == []
    assert trace_to_rows(tr, 0, 5 * MS, 5 * MS) == []


def test_merged_timeline_boundary_clipping():
    """Intervals overlapping the window edge are included (unclipped);
    intervals and kernel events entirely outside are dropped."""
    m, tr, app = _observed_pop()
    iters = tr.app_intervals(0, "pop:iteration")
    second = iters[1]
    # Window straddling the middle of the second iteration: it must
    # appear even though it starts before the window.
    mid = (second.start + second.end) // 2
    entries = merged_timeline(tr, 0, mid, second.end)
    labels = [(e.label, e.time) for e in entries if e.kind == "app"
              and e.label == "pop:iteration"]
    assert ("pop:iteration", second.start) in labels
    # Its reported duration is the full (unclipped) interval length.
    entry = next(e for e in entries if e.kind == "app"
                 and e.label == "pop:iteration")
    assert entry.duration == second.duration
    # An interval that *ends exactly at* the window start is excluded
    # (half-open [start, end) semantics), as is one starting at end.
    first = iters[0]
    after = merged_timeline(tr, 0, first.end, first.end + 1)
    assert (first.start not in
            [e.time for e in after if e.label == "pop:iteration"])
    # Kernel events are window-filtered by their start instant.
    for e in merged_timeline(tr, 0, mid, second.end):
        if e.kind != "app":
            assert mid <= e.time < second.end


def test_intervals_export_includes_breakdown_and_meta():
    m, tr, app = _observed_pop()
    rows = intervals_to_rows(tr, 0, "pop:iteration")
    assert len(rows) == 3
    assert rows[0]["meta_i"] == 0
    assert any(k.startswith("stolen_") for k in rows[0])


def test_trace_export_rows():
    m, tr, app = _observed_pop()
    rows = trace_to_rows(tr, 0, 0, 5 * MS)
    assert rows
    assert all(0 <= r["start_ns"] < 5 * MS for r in rows)


# -- sick nodes ------------------------------------------------------------------------------

def test_cpu_speed_scales_wall_time():
    env = Environment()
    cpu = CPU(env, NullNoise(), speed=0.5)

    def prog(env):
        yield from cpu.compute(1000)
        return env.now

    p = env.process(prog(env))
    assert env.run(until=p) == 2000
    assert cpu.work_executed_ns == 1000  # requested work, not cycles


def test_cpu_speed_validation():
    with pytest.raises(ValueError):
        CPU(Environment(), NullNoise(), speed=0)
    with pytest.raises(ConfigError):
        MachineConfig(n_nodes=4, slow_nodes={9: 0.5})
    with pytest.raises(ConfigError):
        MachineConfig(n_nodes=4, slow_nodes={1: 0.0})


def test_sick_node_drags_bsp_down():
    def span(slow):
        m = Machine(MachineConfig(n_nodes=8, slow_nodes=slow))
        app = BSPApp(work_ns=1 * MS, iterations=10)
        m.run_to_completion(m.launch(app))
        return app.makespan_ns()

    healthy = span(None)
    sick = span({3: 0.8})
    # The whole machine runs at the sick node's pace (synchronized BSP).
    assert sick > healthy * 1.2


def test_psnap_census_finds_the_sick_node():
    m = Machine(MachineConfig(n_nodes=8, kernel="tuned-linux", seed=4,
                              slow_nodes={6: 0.7}))
    res = PSNAPBenchmark(n_samples=128).run(m)
    worst_node, _ = res.noisiest_nodes(1)[0]
    assert worst_node == 6


# -- trace persistence -----------------------------------------------------------

def test_kernel_trace_save_load_roundtrip(tmp_path):
    from repro.ktau import load_kernel_trace, save_kernel_trace
    m, tr, app = _observed_pop()
    path = tmp_path / "node0.trace.jsonl"
    n = save_kernel_trace(tr, 0, 0, m.env.now, path)
    records = load_kernel_trace(path)
    assert len(records) == n > 0
    original = tr.kernel_events_between(0, 0, m.env.now)
    assert [(r.start, r.duration, r.source) for r in records] == \
           [(r.start, r.duration, r.source) for r in original]


def test_trace_noise_reload_and_inject(tmp_path):
    from repro.ktau import load_trace_noise, save_kernel_trace
    m, tr, app = _observed_pop()
    path = tmp_path / "node0.trace.jsonl"
    save_kernel_trace(tr, 0, 0, m.env.now, path)
    noise = load_trace_noise(path)
    # Replayed utilization matches the observed share (same window).
    observed = sum(tr.stolen_breakdown(0, 0, m.env.now).values())
    # stolen_breakdown double counts overlapping sources; replay merges.
    assert 0 < noise.utilization <= observed / m.env.now * 1.05
    # It can drive a machine.
    from repro.noise import InjectionPlan
    m2 = Machine(MachineConfig(
        n_nodes=2, kernel="lightweight",
        injection=InjectionPlan(lambda nid, phase, seed: noise)))
    app2 = BSPApp(work_ns=1 * MS, iterations=5)
    m2.run_to_completion(m2.launch(app2))
    assert app2.makespan_ns() > 5 * MS


def test_app_interval_save_load_roundtrip(tmp_path):
    from repro.ktau import load_app_intervals, save_app_intervals
    m, tr, app = _observed_pop()
    path = tmp_path / "intervals.jsonl"
    n = save_app_intervals(tr, 0, path, "pop:iteration")
    assert n == 3
    records = load_app_intervals(path)
    assert [r.meta["i"] for r in records] == [0, 1, 2]
    assert all(r.name == "pop:iteration" for r in records)


def test_persist_rejects_wrong_kind(tmp_path):
    from repro.errors import TraceError
    from repro.ktau import load_app_intervals, save_kernel_trace
    m, tr, app = _observed_pop()
    path = tmp_path / "trace.jsonl"
    save_kernel_trace(tr, 0, 0, m.env.now, path)
    with pytest.raises(TraceError):
        load_app_intervals(path)
    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(TraceError):
        load_app_intervals(empty)
