"""Tests for the Prometheus exposition layer (:mod:`repro.obs.prom`)."""

import pytest

from repro.obs import prom
from repro.obs.metrics import HOST, MetricsRegistry
from repro.obs.prom import PromParseError, Sample


def _registry():
    reg = MetricsRegistry()
    reg.counter("serve.points_total", HOST, outcome="simulated").inc(3)
    reg.counter("serve.points_total", HOST, outcome="cached").inc(5)
    reg.gauge("serve.queue_depth", HOST).set(2)
    h = reg.histogram("serve.http_request_seconds", HOST,
                      bounds=(0.1, 1.0), route="jobs")
    for v in (0.05, 0.5, 0.5, 3.0):
        h.observe(v)
    return reg


# -- rendering ---------------------------------------------------------------

def test_metric_name_sanitizes_dots_and_rejects_garbage():
    assert prom.metric_name("serve.points_total") == \
        "repro_serve_points_total"
    assert prom.metric_name("a-b c", prefix="x_") == "x_a_b_c"
    with pytest.raises(PromParseError):
        prom.metric_name("")


def test_escape_label_value_round_trips_through_parse():
    nasty = 'back\\slash "quote"\nnewline'
    text = (f'# TYPE repro_x counter\n'
            f'repro_x{{p="{prom.escape_label_value(nasty)}"}} 1\n')
    samples, _types = prom.parse(text)
    assert samples == [Sample("repro_x", (("p", nasty),), 1.0)]


def test_render_counters_gauges_and_cumulative_histograms():
    text = prom.render(_registry())
    samples, types = prom.validate(text)
    assert types["repro_serve_points_total"] == "counter"
    assert types["repro_serve_queue_depth"] == "gauge"
    assert types["repro_serve_http_request_seconds"] == "histogram"
    by_name = {}
    for s in samples:
        by_name.setdefault(s.name, []).append(s)
    # Registry buckets are per-bucket counts; exposition must be
    # cumulative: 0.05 -> le=0.1, two 0.5s -> le=1.0, 3.0 -> +Inf.
    buckets = [(dict(s.labels)["le"], s.value)
               for s in by_name["repro_serve_http_request_seconds_bucket"]]
    assert buckets == [("0.1", 1.0), ("1.0", 3.0), ("+Inf", 4.0)]
    assert by_name["repro_serve_http_request_seconds_count"][0].value == 4.0
    assert by_name["repro_serve_http_request_seconds_sum"][0].value == \
        pytest.approx(4.05)
    values = {tuple(s.labels): s.value
              for s in by_name["repro_serve_points_total"]}
    assert values[(("outcome", "simulated"),)] == 3.0
    assert values[(("outcome", "cached"),)] == 5.0


def test_render_is_byte_stable_and_sorted():
    a = prom.render(_registry())
    b = prom.render(_registry())
    assert a == b
    names = [line.split()[2] for line in a.splitlines()
             if line.startswith("# TYPE")]
    assert names == sorted(names)
    assert a.endswith("\n")


def test_render_extras_and_non_numeric_gauges():
    reg = MetricsRegistry()
    reg.gauge("serve.label", HOST).set("not-a-number")
    text = prom.render(reg,
                       extra_counters={"serve.requests_total": 7},
                       extra_gauges={"serve.ready": True,
                                     "serve.skipme": "nope"})
    samples, types = prom.validate(text)
    by_name = {s.name: s.value for s in samples}
    assert by_name["repro_serve_requests_total"] == 7.0
    assert by_name["repro_serve_ready"] == 1.0
    assert "repro_serve_label" not in by_name  # non-numeric: JSON-only
    assert "repro_serve_skipme" not in by_name
    assert types["repro_serve_requests_total"] == "counter"


def test_render_empty_registry_is_empty_string():
    assert prom.render(MetricsRegistry()) == ""


# -- strict parsing ----------------------------------------------------------

def test_parse_rejects_malformed_documents():
    bad = [
        "# BOGUS directive here\n",
        "# TYPE repro_x flavor\n",
        "# TYPE bad-name counter\n",
        "# TYPE repro_x counter\n# TYPE repro_x counter\n",
        "bad-name 1\n",
        "repro_x one\n",
        "repro_x 1 2 3\n",
        'repro_x{p="unterminated} 1\n',
        'repro_x{p="bad\\q"} 1\n',
        'repro_x{p="a" q="b"} 1\n',
        "repro_x{9bad=\"v\"} 1\n",
    ]
    for text in bad:
        with pytest.raises(PromParseError):
            prom.parse(text)


def test_parse_accepts_timestamps_and_blank_lines():
    samples, _ = prom.parse("\nrepro_x 1 1700000000\n\n")
    assert samples == [Sample("repro_x", (), 1.0)]


# -- structural validation ---------------------------------------------------

def test_validate_rejects_untyped_and_negative_counters():
    with pytest.raises(PromParseError, match="no # TYPE"):
        prom.validate("repro_x 1\n")
    with pytest.raises(PromParseError, match="negative"):
        prom.validate("# TYPE repro_x counter\nrepro_x -1\n")


def test_validate_rejects_broken_histograms():
    head = "# TYPE repro_h histogram\n"
    non_monotone = (head +
                    'repro_h_bucket{le="0.1"} 5\n'
                    'repro_h_bucket{le="1.0"} 3\n'
                    'repro_h_bucket{le="+Inf"} 6\n')
    with pytest.raises(PromParseError, match="cumulative"):
        prom.validate(non_monotone)
    no_inf = head + 'repro_h_bucket{le="0.1"} 1\n'
    with pytest.raises(PromParseError, match=r"\+Inf"):
        prom.validate(no_inf)
    count_mismatch = (head +
                      'repro_h_bucket{le="+Inf"} 4\n'
                      'repro_h_count 5\n')
    with pytest.raises(PromParseError, match="_count"):
        prom.validate(count_mismatch)
