"""Tests for the analysis toolkit: stats, spectra, slowdown, absorption."""

import numpy as np
import pytest

from repro.analysis import (
    BSPModel,
    amplification_factor,
    dominant_frequencies,
    expected_max_wall,
    expected_mean_wall,
    find_peaks,
    format_csv,
    format_ns,
    format_pct,
    format_table,
    pearson,
    periodogram,
    score_attribution,
    slowdown,
    summarize_series,
    wall_time_by_phase,
)
from repro.sim import MS, US


# -- stats -------------------------------------------------------------------

def test_summarize_series_basic():
    s = summarize_series([1, 2, 3, 4, 5])
    assert s.n == 5
    assert s.mean == 3
    assert s.median == 3
    assert s.minimum == 1
    assert s.maximum == 5


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize_series([])


def test_cov_zero_for_flat_series():
    assert summarize_series([7, 7, 7]).cov == 0.0


# -- spectra -------------------------------------------------------------------

def test_periodogram_finds_injected_tone():
    # 100 Hz tone sampled at 1 kHz (1 ms quanta) for 4 s.
    t = np.arange(4000) * 1e-3
    series = 10 + np.sin(2 * np.pi * 100 * t)
    freqs = dominant_frequencies(series, MS, top=1)
    assert freqs[0] == pytest.approx(100.0, rel=0.02)


def test_periodogram_flat_series_has_no_peaks():
    spec = periodogram(np.full(1000, 5.0), MS)
    assert find_peaks(spec) == []


def test_periodogram_validates_input():
    with pytest.raises(ValueError):
        periodogram([1, 2, 3], MS)
    with pytest.raises(ValueError):
        periodogram(np.ones(100), 0)


def test_multiple_tones_ranked_by_power():
    t = np.arange(8000) * 1e-3
    series = (3 * np.sin(2 * np.pi * 50 * t)
              + 1 * np.sin(2 * np.pi * 200 * t))
    freqs = dominant_frequencies(series, MS, top=2)
    assert freqs[0] == pytest.approx(50.0, rel=0.05)
    assert freqs[1] == pytest.approx(200.0, rel=0.05)


# -- slowdown ----------------------------------------------------------------------

def test_slowdown_metrics():
    r = slowdown(1000, 1100, injected_utilization=0.025)
    assert r.slowdown_percent == pytest.approx(10.0)
    assert r.amplification == pytest.approx(4.0)
    assert r.verdict == "amplified"


def test_slowdown_verdicts():
    assert slowdown(1000, 1005, 0.025).verdict == "absorbed"
    assert slowdown(1000, 1025, 0.025).verdict == "transferred"
    assert slowdown(1000, 1200, 0.025).verdict == "amplified"
    assert slowdown(1000, 1200).verdict == "baseline"


def test_slowdown_validation():
    with pytest.raises(ValueError):
        slowdown(0, 100)
    with pytest.raises(ValueError):
        slowdown(100, -1)
    with pytest.raises(ValueError):
        slowdown(100, 100, 1.0)


def test_amplification_nan_without_injection():
    assert amplification_factor(100, 200, 0.0) != amplification_factor(100, 200, 0.0)


# -- absorption model ------------------------------------------------------------------

def test_wall_time_by_phase_bounds():
    walls = wall_time_by_phase(work=900, period=1000, duration=100)
    # Work always >= raw work; at most work + 2 full events here.
    assert walls.min() >= 900
    assert walls.max() <= 900 + 2 * 100
    # Mean inflation near the utilization.
    assert walls.mean() == pytest.approx(1000, rel=0.06)


def test_expected_max_grows_with_p_for_coarse_noise():
    # Window much shorter than the period: classic amplification.
    kwargs = dict(work=100 * US, period=100 * MS, duration=2500 * US)
    e1 = expected_max_wall(1, **kwargs)
    e64 = expected_max_wall(64, **kwargs)
    e4096 = expected_max_wall(4096, **kwargs)
    assert e1 < e64 < e4096
    # At large P someone is almost surely hit: max ~ work + duration.
    assert e4096 == pytest.approx(100 * US + 2500 * US, rel=0.05)


def test_fine_noise_is_absorbed_in_model():
    # Window spans many periods: max ~ mean ~ work/(1-u).
    kwargs = dict(work=100 * MS, period=1 * MS, duration=25 * US)
    mean = expected_mean_wall(**kwargs)
    emax = expected_max_wall(4096, **kwargs)
    assert emax / mean < 1.001


def test_bsp_model_amplification_ordering():
    model = BSPModel(work_ns=1 * MS, round_cost_ns=5 * US)
    coarse = model.predict(1024, period=100 * MS, duration=2500 * US)
    fine = model.predict(1024, period=1 * MS, duration=25 * US)
    # Same 2.5% net noise; coarse amplifies far more than fine.
    assert coarse.injected_utilization == pytest.approx(fine.injected_utilization)
    assert coarse.amplification > 10 * fine.amplification
    # Fine noise stays near-absorbed (amp ~2 from boundary straddling,
    # versus tens for the coarse pattern).
    assert fine.amplification < 2.5


def test_bsp_model_quiet_iteration_scales_logarithmically():
    model = BSPModel(work_ns=1 * MS, round_cost_ns=10 * US)
    assert model.quiet_iteration(1) == 1 * MS
    assert model.quiet_iteration(2) == 1 * MS + 10 * US
    assert model.quiet_iteration(1024) == 1 * MS + 10 * 10 * US


# -- correlation ----------------------------------------------------------------------------

def test_pearson_perfect_correlation():
    assert pearson([1, 2, 3], [10, 20, 30]) == pytest.approx(1.0)
    assert pearson([1, 2, 3], [30, 20, 10]) == pytest.approx(-1.0)


def test_pearson_constant_series_zero():
    assert pearson([1, 1, 1], [1, 2, 3]) == 0.0


def test_score_attribution_perfect():
    d = [100, 200, 150]
    s = score_attribution(d, [10, 110, 60], [10, 110, 60])
    assert s.coverage == pytest.approx(1.0)
    assert s.mean_abs_error_ns == 0.0
    assert s.duration_vs_charged == pytest.approx(1.0)


def test_score_attribution_validates():
    with pytest.raises(ValueError):
        score_attribution([1], [1], [1])


# -- tables --------------------------------------------------------------------------------------

def test_format_table_alignment_and_title():
    text = format_table(["name", "value"], [["a", 1], ["bb", 22]],
                        title="T1")
    lines = text.splitlines()
    assert lines[0] == "T1"
    assert "name" in lines[1] and "value" in lines[1]
    assert len(lines) == 5


def test_format_table_validates_row_width():
    with pytest.raises(ValueError):
        format_table(["a", "b"], [["only-one"]])


def test_format_csv_quotes_commas():
    out = format_csv(["a"], [["x,y"]])
    assert '"x,y"' in out


def test_format_helpers():
    assert format_ns(1_500) == "1.5 us"
    assert format_ns(2_500_000) == "2.5 ms"
    assert format_ns(3_000_000_000) == "3 s"
    assert format_ns(float("nan")) == "-"
    assert format_pct(0.025) == "2.5%"
    assert format_pct(float("nan")) == "-"


# -- ascii plots ----------------------------------------------------------------

def test_sparkline_shape():
    from repro.analysis import sparkline
    line = sparkline([0, 1, 2, 3, 2, 1, 0])
    assert len(line) == 7
    assert line[3] == "█"
    assert sparkline([5, 5, 5]) == "▁▁▁"
    with pytest.raises(ValueError):
        sparkline([])


def test_ascii_series_renders_and_downsamples():
    from repro.analysis import ascii_series
    import numpy as np
    values = np.sin(np.linspace(0, 6.28, 500)) + 1
    text = ascii_series(values, width=40, height=8, title="sine")
    lines = text.splitlines()
    assert lines[0] == "sine"
    assert len(lines) == 1 + 8 + 1  # title + rows + axis
    assert all(len(line) <= 14 + 40 for line in lines[1:])
    with pytest.raises(ValueError):
        ascii_series([], width=10)
    with pytest.raises(ValueError):
        ascii_series([1], width=0)


def test_ascii_bars_scaling():
    from repro.analysis import ascii_bars
    text = ascii_bars(["a", "bb"], [1.0, 2.0], width=10)
    lines = text.splitlines()
    assert lines[0].count("█") == 5
    assert lines[1].count("█") == 10
    with pytest.raises(ValueError):
        ascii_bars(["a"], [1, 2])
    with pytest.raises(ValueError):
        ascii_bars([], [])


# -- noise budgeting ----------------------------------------------------------------

def test_budget_inversion_monotone_and_valid():
    from repro.analysis import BSPModel, max_event_duration
    model = BSPModel(work_ns=1 * MS, round_cost_ns=5 * US)
    b = max_event_duration(model, 256, period_ns=100 * MS,
                           target_slowdown=0.05)
    assert 0 < b.max_duration_ns < 100 * MS
    assert b.predicted_slowdown <= 0.05
    # A slightly longer event would bust the budget.
    busted = model.predict(256, 100 * MS,
                           b.max_duration_ns + 10_000).slowdown_fraction
    assert busted > 0.05 * 0.9


def test_budget_high_frequency_allows_more_total_cpu():
    """At a fixed slowdown target, fine-grained activity may consume
    more total CPU than coarse-grained — the budgeting corollary of
    absorption."""
    from repro.analysis import BSPModel, max_utilization_at
    model = BSPModel(work_ns=1 * MS, round_cost_ns=5 * US)
    coarse = max_utilization_at(model, 256, 100 * MS, 0.05)  # 10 Hz
    fine = max_utilization_at(model, 256, 1 * MS, 0.05)      # 1000 Hz
    assert fine > 2 * coarse


def test_budget_relaxed_target_allows_high_utilization():
    # Slowdown diverges as utilization -> 1 (1/(1-u) inflation), so even
    # a huge target caps below the full period; target 10x admits ~90%.
    from repro.analysis import BSPModel, max_event_duration
    model = BSPModel(work_ns=10 * MS, round_cost_ns=1 * US)
    b = max_event_duration(model, 4, period_ns=1 * MS,
                           target_slowdown=10.0)
    assert 0.85 < b.max_utilization < 0.95


def test_budget_validation():
    from repro.analysis import BSPModel, max_event_duration
    from repro.errors import ConfigError
    model = BSPModel(work_ns=1 * MS, round_cost_ns=5 * US)
    with pytest.raises(ConfigError):
        max_event_duration(model, 4, 100, 0.0)
    with pytest.raises(ConfigError):
        max_event_duration(model, 4, 1, 0.1)
    with pytest.raises(ConfigError):
        max_event_duration(model, 4, 100, 0.1, resolution_ns=0)
