"""Tests for the application skeletons."""

import pytest

from repro.apps import (
    BSPApp,
    CGLikeApp,
    POPLikeApp,
    StencilApp,
    SweepApp,
    build_workload,
    grid_dims,
    workload_names,
)
from repro.core import Machine, MachineConfig
from repro.errors import ConfigError
from repro.ktau import KtauTracer
from repro.noise import InjectionPlan
from repro.sim import MS, US


def _run_app(app, n_nodes, **machine_kw):
    m = Machine(MachineConfig(n_nodes=n_nodes, **machine_kw))
    procs = m.launch(app)
    m.run_to_completion(procs)
    return m


# -- base helpers ---------------------------------------------------------------

def test_grid_dims_square_and_rect():
    assert grid_dims(16) == (4, 4)
    assert grid_dims(12) == (3, 4)
    assert grid_dims(7) == (1, 7)
    assert grid_dims(1) == (1, 1)
    with pytest.raises(ConfigError):
        grid_dims(0)


def test_workload_registry():
    assert set(workload_names()) == {"bsp", "pop", "stencil", "sweep", "cg",
                                     "transpose"}
    with pytest.raises(ConfigError):
        build_workload("linpack")


def test_iteration_timing_recorded_per_rank():
    app = BSPApp(work_ns=100_000, iterations=4, collective="none")
    _run_app(app, 3)
    d = app.all_durations_ns()
    assert d.shape == (3, 4)
    assert (d == 100_000).all()  # quiet machine, no collective


def test_makespan_covers_run():
    app = BSPApp(work_ns=50_000, iterations=5)
    m = _run_app(app, 4)
    assert 0 < app.makespan_ns() <= m.env.now


def test_results_before_run_rejected():
    app = BSPApp(work_ns=1000)
    with pytest.raises(ConfigError):
        app.all_durations_ns()
    with pytest.raises(ConfigError):
        app.makespan_ns()


def test_app_validation():
    with pytest.raises(ConfigError):
        BSPApp(work_ns=-1)
    with pytest.raises(ConfigError):
        BSPApp(work_ns=1, iterations=0)
    with pytest.raises(ConfigError):
        BSPApp(work_ns=1, collective="gossip")
    with pytest.raises(ConfigError):
        BSPApp(work_ns=1, imbalance=1.0)
    with pytest.raises(ConfigError):
        POPLikeApp(solver_iterations=0)
    with pytest.raises(ConfigError):
        StencilApp(dt_interval=-1)
    with pytest.raises(ConfigError):
        SweepApp(blocks_per_rank=0)
    with pytest.raises(ConfigError):
        CGLikeApp(spmv_ns=-1)


# -- BSP ----------------------------------------------------------------------------

def test_bsp_collective_synchronizes_iterations():
    app = BSPApp(work_ns=1 * MS, iterations=3, imbalance=0.5, seed=7)
    _run_app(app, 4)
    # With a synchronizing allreduce, iteration *end* times align.
    ends = {r: [e for _, e in app.iteration_times[r]] for r in range(4)}
    for i in range(3):
        times = {ends[r][i] for r in range(4)}
        assert max(times) - min(times) < 100 * US


def test_bsp_none_collective_lets_ranks_drift():
    app = BSPApp(work_ns=1 * MS, iterations=3, collective="none",
                 imbalance=0.5, seed=7)
    _run_app(app, 4)
    totals = [sum(app.durations_ns(r)) for r in range(4)]
    assert max(totals) - min(totals) > 100 * US


def test_bsp_describe():
    d = BSPApp(work_ns=123, collective="barrier").describe()
    assert d["app"] == "bsp"
    assert d["work_ns"] == 123
    assert d["collective"] == "barrier"


def test_bsp_imbalance_deterministic_in_seed():
    def totals(seed):
        app = BSPApp(work_ns=1 * MS, iterations=3, collective="none",
                     imbalance=0.3, seed=seed)
        _run_app(app, 2)
        return [app.durations_ns(r) for r in range(2)]

    assert totals(5) == totals(5)
    assert totals(5) != totals(6)


# -- POP-like ---------------------------------------------------------------------------

def test_pop_issues_many_allreduces():
    app = POPLikeApp(baroclinic_ns=100_000, solver_iterations=10,
                     solver_compute_ns=1000, iterations=2)
    m = _run_app(app, 4)
    ctxs = [m.mpi.rank_context(r) for r in range(4)]
    # op_counts live on fresh contexts; use message totals instead:
    # each allreduce at P=4 is 2 rounds of sendrecv per rank.
    assert m.network.messages_transferred >= 2 * 10 * 2 * 4


def test_pop_iteration_time_dominated_by_solver_latency_at_scale():
    app_small = POPLikeApp(baroclinic_ns=0, solver_iterations=20,
                           solver_compute_ns=0, iterations=1)
    m = _run_app(app_small, 8)
    # 20 solver allreduces of 3 rounds each, all latency.
    assert app_small.makespan_ns() > 20 * 3 * m.mpi.network.params.L


# -- Stencil ---------------------------------------------------------------------------------

def test_stencil_neighbour_structure():
    app = StencilApp()
    m = Machine(MachineConfig(n_nodes=9))
    ctxs = [m.mpi.rank_context(r) for r in range(9)]
    # 3x3 grid: corners 2 neighbours, edges 3, centre 4.
    counts = sorted(len(app.neighbours(c)) for c in ctxs)
    assert counts == [2, 2, 2, 2, 3, 3, 3, 3, 4]


def test_stencil_runs_without_dt_reduce():
    app = StencilApp(work_ns=10_000, halo_bytes=512, iterations=3,
                     dt_interval=0)
    m = _run_app(app, 6)
    assert app.all_durations_ns().shape == (6, 3)


def test_stencil_single_rank_needs_no_network():
    app = StencilApp(work_ns=10_000, iterations=2, dt_interval=0)
    m = _run_app(app, 1)
    assert m.network.messages_transferred == 0


# -- Sweep ------------------------------------------------------------------------------------

def test_sweep_pipeline_completes_all_corners():
    app = SweepApp(block_work_ns=1000, blocks_per_rank=2, iterations=2)
    m = _run_app(app, 6)
    assert app.all_durations_ns().shape == (6, 2)
    assert m.mpi.router.quiescent()


def test_sweep_corner_ranks_have_directional_deps():
    app = SweepApp()
    m = Machine(MachineConfig(n_nodes=4))  # 2x2 grid
    c0 = m.mpi.rank_context(0)
    # ++ sweep: rank 0 has no upstream, two downstream.
    assert app._upstream(c0, 1, 1) == []
    assert sorted(app._downstream(c0, 1, 1)) == [1, 2]
    # -- sweep: reversed.
    assert sorted(app._upstream(c0, -1, -1)) == [1, 2]
    assert app._downstream(c0, -1, -1) == []


def test_sweep_makespan_grows_with_grid_diagonal():
    def span(P):
        app = SweepApp(block_work_ns=100_000, blocks_per_rank=1,
                       iterations=1)
        _run_app(app, P)
        return app.makespan_ns()

    assert span(16) > span(4) > span(1)


# -- CG ------------------------------------------------------------------------------------------

def test_cg_pow2_uses_butterfly():
    app = CGLikeApp(spmv_ns=1000, exchange_bytes=64, iterations=1)
    m = _run_app(app, 8)
    # Butterfly: 3 rounds of sendrecv per rank = 24 exchange messages,
    # plus 2 allreduces (2 * 3 rounds * 8 ranks sendrecv) and change.
    assert m.network.messages_transferred >= 24 + 2 * 3 * 8


def test_cg_non_pow2_falls_back_to_ring():
    app = CGLikeApp(spmv_ns=1000, exchange_bytes=64, iterations=2)
    m = _run_app(app, 6)
    assert app.all_durations_ns().shape == (6, 2)
    assert m.mpi.router.quiescent()


# -- tracer integration ---------------------------------------------------------------------------

def test_app_emits_observer_intervals_when_bound():
    m = Machine(MachineConfig(n_nodes=4, kernel="lightweight",
                              injection=InjectionPlan("2.5pct@100Hz", seed=1)))
    tracer = KtauTracer(m)
    app = BSPApp(work_ns=1 * MS, iterations=5).bind_tracer(tracer)
    m.run_to_completion(m.launch(app))
    recs = tracer.app_intervals(0, "bsp:iteration")
    assert len(recs) == 5
    # Observer intervals and app-local timing agree exactly.
    assert [(r.start, r.end) for r in recs] == app.iteration_times[0]


def test_noise_slows_apps_more_than_quiet():
    def span(injection):
        app = BSPApp(work_ns=2 * MS, iterations=10)
        _run_app(app, 8, kernel="lightweight", injection=injection, seed=9)
        return app.makespan_ns()

    quiet = span(None)
    noisy = span(InjectionPlan("2.5pct@10Hz", seed=9))
    assert noisy > quiet
