"""Tests for the kernel model: config, activities, CPU, node."""

import pytest

from repro.errors import ConfigError, SimulationError
from repro.kernel import (
    CPU,
    DaemonSpec,
    KernelConfig,
    NICCostModel,
    Node,
    TIMER_SOURCE,
    build_kernel_noise,
    build_kernel_sources,
)
from repro.noise import CompositeNoise, NullNoise, PeriodicNoise
from repro.sim import MS, SEC, US, Environment


# -- config ------------------------------------------------------------------

def test_lightweight_preset_is_silent():
    cfg = KernelConfig.lightweight()
    assert cfg.hz == 0
    assert cfg.background_utilization == 0.0
    assert cfg.daemons == ()


def test_commodity_linux_preset_properties():
    cfg = KernelConfig.commodity_linux()
    assert cfg.hz == 1000
    assert cfg.tick_period_ns == MS
    assert 0 < cfg.background_utilization < 0.05
    assert {d.name for d in cfg.daemons} >= {"kswapd", "pdflush"}


def test_preset_lookup():
    assert KernelConfig.preset("tuned-linux").hz == 100
    with pytest.raises(ConfigError):
        KernelConfig.preset("windows-nt")


def test_daemon_spec_validation():
    with pytest.raises(ConfigError):
        DaemonSpec("", SEC, MS)
    with pytest.raises(ConfigError):
        DaemonSpec("d", 0, MS)
    with pytest.raises(ConfigError):
        DaemonSpec("d", MS, MS)  # duration >= interval (periodic)
    with pytest.raises(ConfigError):
        DaemonSpec("d", SEC, MS, arrival="quantum")
    # poisson daemons may have duration >= interval-mean
    DaemonSpec("d", 2 * MS, MS, arrival="poisson")


def test_kernel_config_validation():
    with pytest.raises(ConfigError):
        KernelConfig(hz=-1)
    with pytest.raises(ConfigError):
        KernelConfig(hz=1000, tick_cost_ns=0)
    with pytest.raises(ConfigError):
        KernelConfig(hz=1000, tick_cost_ns=10, tick_heavy_cost_ns=5)
    with pytest.raises(ConfigError):
        KernelConfig(hz=1000, tick_heavy_cost_ns=2 * MS)  # > period
    with pytest.raises(ConfigError):
        KernelConfig(daemons=(DaemonSpec("x", SEC, MS),
                              DaemonSpec("x", SEC, MS)))


def test_implausible_utilization_rejected():
    with pytest.raises(ConfigError):
        KernelConfig(daemons=(DaemonSpec("hog", 10, 6, arrival="poisson"),))


def test_nic_cost_model():
    nic = NICCostModel(rx_irq_ns=2000, rx_softirq_base_ns=3000,
                       rx_softirq_per_kb_ns=1000, tx_overhead_ns=500)
    assert nic.rx_cost(0) == 5000
    assert nic.rx_cost(2048) == 7000
    with pytest.raises(ValueError):
        nic.rx_cost(-1)
    with pytest.raises(ConfigError):
        NICCostModel(rx_irq_ns=-1)


# -- activities ---------------------------------------------------------------

def test_lightweight_kernel_builds_null_noise():
    noise = build_kernel_noise(KernelConfig.lightweight(), 0)
    assert isinstance(noise, NullNoise)


def test_commodity_kernel_builds_named_sources():
    sources = build_kernel_sources(KernelConfig.commodity_linux(), 0, seed=1)
    names = {s.name for s in sources}
    assert TIMER_SOURCE in names
    assert "kswapd" in names


def test_kernel_sources_phase_differs_across_nodes():
    cfg = KernelConfig.tuned_linux()
    a = build_kernel_sources(cfg, 0, seed=1)
    b = build_kernel_sources(cfg, 1, seed=1)
    assert a[0].phase != b[0].phase


def test_kernel_sources_deterministic_in_seed():
    cfg = KernelConfig.tuned_linux()
    a = build_kernel_sources(cfg, 3, seed=9)
    b = build_kernel_sources(cfg, 3, seed=9)
    assert a[0].phase == b[0].phase
    assert a[0].events_in(0, SEC) == b[0].events_in(0, SEC)


def test_injected_noise_is_merged():
    injected = PeriodicNoise(10 * MS, 250 * US, name="injected")
    noise = build_kernel_noise(KernelConfig.lightweight(), 0, injected=[injected])
    assert noise.name == "injected"  # single source passes through
    noise2 = build_kernel_noise(KernelConfig.tuned_linux(), 0,
                                injected=[injected])
    assert isinstance(noise2, CompositeNoise)
    assert "injected" in {s.name for s in noise2.sources}


def test_injected_null_noise_is_dropped():
    noise = build_kernel_noise(KernelConfig.lightweight(), 0,
                               injected=[NullNoise()])
    assert isinstance(noise, NullNoise)


# -- CPU ------------------------------------------------------------------------

def test_cpu_compute_without_noise_is_exact():
    env = Environment()
    cpu = CPU(env, NullNoise())

    def proc(env):
        yield from cpu.compute(12_345)
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 12_345
    assert cpu.work_executed_ns == 12_345


def test_cpu_compute_inflated_by_noise():
    env = Environment()
    cpu = CPU(env, PeriodicNoise(100, 10))  # 10%

    def proc(env):
        yield from cpu.compute(900)
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 1000


def test_cpu_zero_work_is_instant():
    env = Environment()
    cpu = CPU(env, PeriodicNoise(100, 10))

    def proc(env):
        yield from cpu.compute(0)
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 0


def test_cpu_negative_work_rejected():
    env = Environment()
    cpu = CPU(env, NullNoise())

    def proc(env):
        yield from cpu.compute(-1)

    env.process(proc(env))
    with pytest.raises(ValueError):
        env.run()


def test_cpu_nested_compute_rejected():
    env = Environment()
    cpu = CPU(env, NullNoise())

    def inner(env):
        yield from cpu.compute(100)

    def outer(env):
        env.process(inner(env))
        yield env.timeout(1)
        yield from cpu.compute(100)

    env.process(outer(env))
    with pytest.raises(SimulationError):
        env.run()


def test_transient_steal_extends_active_compute():
    env = Environment()
    cpu = CPU(env, NullNoise())

    def worker(env):
        yield from cpu.compute(1000)
        return env.now

    def stealer(env):
        yield env.timeout(500)
        done_at = cpu.steal_transient(200, "nic-rx")
        assert done_at == 700

    p = env.process(worker(env))
    env.process(stealer(env))
    assert env.run(until=p) == 1200
    assert cpu.transient_stolen_ns == 200


def test_transient_steal_while_idle_does_not_charge_later_compute():
    env = Environment()
    cpu = CPU(env, NullNoise())
    times = {}

    def worker(env):
        yield env.timeout(100)  # idle while the steal happens at t=50
        yield from cpu.compute(1000)
        times["done"] = env.now

    def stealer(env):
        yield env.timeout(50)
        assert cpu.steal_transient(200, "nic-rx") == 250

    env.process(worker(env))
    env.process(stealer(env))
    env.run()
    assert times["done"] == 1100


def test_steal_listener_invoked():
    env = Environment()
    cpu = CPU(env, NullNoise())
    seen = []
    cpu.add_steal_listener(lambda s, d, src: seen.append((s, d, src)))

    def proc(env):
        yield env.timeout(10)
        cpu.steal_transient(5, "nic-rx")
        cpu.steal_transient(0, "nic-rx")  # zero-cost steals are invisible

    env.process(proc(env))
    env.run()
    assert seen == [(10, 5, "nic-rx")]


def test_stolen_breakdown_per_source():
    env = Environment()
    comp = CompositeNoise([PeriodicNoise(100, 10, name="a"),
                           PeriodicNoise(200, 20, phase=50, name="b")])
    cpu = CPU(env, comp)
    bd = cpu.stolen_breakdown(0, 1000)
    assert bd == {"a": 100, "b": 100}
    assert CPU(env, NullNoise()).stolen_breakdown(0, 1000) == {}


# -- node ---------------------------------------------------------------------------

def test_node_compute_service():
    env = Environment()
    node = Node(env, 0, KernelConfig.lightweight())

    def proc(env):
        yield from node.compute(500)
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 500


def test_node_syscall_costs_and_counts():
    env = Environment()
    node = Node(env, 0, KernelConfig.lightweight())  # syscall_ns=500

    def proc(env):
        yield from node.syscall()
        yield from node.syscall(extra_work=100)
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 500 + 600
    assert node.syscall_count == 2


def test_node_invalid_id():
    with pytest.raises(ConfigError):
        Node(Environment(), -1, KernelConfig.lightweight())


def test_node_kernel_noise_slows_apps():
    env = Environment()
    node = Node(env, 0, KernelConfig.commodity_linux(), seed=5)
    work = 100 * MS

    def proc(env):
        yield from node.compute(work)
        return env.now

    p = env.process(proc(env))
    elapsed = env.run(until=p)
    # Inflated, but by less than ~2x the nominal background utilization.
    util = node.config.background_utilization
    assert work < elapsed < work * (1 + 4 * util)
