"""Planted-ground-truth tests for the idle-wave machinery.

Everything here validates against ground truth known *by
construction*: hand-built edge logs with analytically known wave
paths, and simulated runs where a single planted one-off delay must
reappear in the measurement exactly where the dependency graph says
it must (Afzal/Hager/Wellein, arXiv:1905.10603).
"""

from dataclasses import replace

import pytest

from repro.core import ExperimentConfig, run_experiment
from repro.errors import ConfigError
from repro.faults import FaultPlan, parse_faults
from repro.harness import run_experiment as run_harness_experiment
from repro.harness.base import set_execution_policy
from repro.noise import OneOffNoise
from repro.obs import extract_wavefront, match_edge_logs, propagate_delay
from repro.obs.wavefront import WavefrontResult, format_wavefront


# -- synthetic edge logs (analytic ground truth) -----------------------------------

def _wait(start, end, src, sent_at, op="recv"):
    return (start, end, src, sent_at, end, op)


def _chain_log(shift_by_rank):
    """A 3-rank chain 0 -> 1 -> 2, one message per hop, with each
    rank's wait times shifted by ``shift_by_rank[rank]``."""
    s = shift_by_rank
    return {
        "waits": {
            0: [],
            1: [_wait(100, 200 + s[1], 0, 50 + s[0])],
            2: [_wait(300, 400 + s[2], 1, 250 + s[1])],
        },
        "starts": {0: 0, 1: 0, 2: 0},
        "completions": {0: 500 + s[0], 1: 500 + s[1], 2: 500 + s[2]},
    }


def test_propagate_delay_follows_causal_sends():
    log = _chain_log({0: 0, 1: 0, 2: 0})
    arrival, hops = propagate_delay(log, 0, 40)
    # Rank 0's message left at 50 >= 40, so it carries the wave; rank
    # 1's message left at 250 >= its own arrival (200), so it carries
    # it onward.
    assert arrival == {0: 40, 1: 200, 2: 400}
    assert hops == {0: 0, 1: 1, 2: 2}


def test_propagate_delay_ignores_messages_sent_before_arrival():
    log = _chain_log({0: 0, 1: 0, 2: 0})
    # Delay planted after rank 0's only send: the wave never leaves.
    arrival, hops = propagate_delay(log, 0, 60)
    assert arrival == {0: 60}
    assert hops == {0: 0}


def test_match_edge_logs_rejects_structural_mismatch():
    base = _chain_log({0: 0, 1: 0, 2: 0})
    missing = _chain_log({0: 0, 1: 0, 2: 0})
    missing["waits"][2] = []
    with pytest.raises(ConfigError, match="baseline waits"):
        match_edge_logs(base, missing)
    other_src = _chain_log({0: 0, 1: 0, 2: 0})
    other_src["waits"][2] = [_wait(300, 400, 0, 250)]
    with pytest.raises(ConfigError, match="not the same program"):
        match_edge_logs(base, other_src)
    other_ranks = _chain_log({0: 0, 1: 0, 2: 0})
    del other_ranks["waits"][2]
    with pytest.raises(ConfigError, match="rank sets"):
        match_edge_logs(base, other_ranks)


def _absorbing_chain(rank2_shift):
    """Baseline/delayed logs for a 0 -> 1 -> 2 chain where rank 2 had
    slack (it picked the hop-2 message up late in the baseline) and
    absorbs all but ``rank2_shift`` ns of a 1000 ns wave.  Both logs
    are physically consistent: every wait ends at or after its
    message's send time."""
    base = {
        "waits": {
            0: [],
            1: [_wait(100, 200, 0, 50)],
            2: [_wait(900, 2000, 1, 250)],
        },
        "starts": {0: 0, 1: 0, 2: 0},
        "completions": {0: 500, 1: 2100, 2: 2100},
    }
    delayed = {
        "waits": {
            0: [],
            1: [_wait(100, 1200, 0, 1050)],
            2: [_wait(900, 2000 + rank2_shift, 1, 1250)],
        },
        "starts": {0: 0, 1: 0, 2: 0},
        "completions": {0: 1500, 1: 2100 + rank2_shift,
                        2: 2100 + rank2_shift},
    }
    return base, delayed


def test_extract_wavefront_reads_planted_shifts():
    base, delayed = _absorbing_chain(400)
    wave = extract_wavefront(base, delayed, source_rank=0, t0_ns=40,
                             duration_ns=1000)
    assert wave.arrival_order() == [0, 1, 2]
    assert wave.residual_ns == {0: 1000, 1: 1000, 2: 400}
    assert wave.hops == {0: 0, 1: 1, 2: 2}
    assert wave.completion_shift_ns == {0: 1000, 1: 400, 2: 400}
    assert not wave.undamped  # rank 2 absorbed most of it
    assert wave.decay_slope < 0
    assert wave.effective_decay_length < 10
    # The fully propagated variant is undamped: decay maps to inf.
    base_full = _chain_log({0: 0, 1: 0, 2: 0})
    full = extract_wavefront(base_full,
                             _chain_log({0: 1000, 1: 1000, 2: 1000}),
                             source_rank=0, t0_ns=40, duration_ns=1000)
    assert full.undamped
    assert full.decay_length_ranks is None
    assert full.effective_decay_length == float("inf")
    assert "idle wave from rank 0" in format_wavefront(full)


def test_extract_wavefront_counts_dead_ranks_in_decay_fit():
    # Wave dies before rank 2 (shift below the 5% threshold).
    base, delayed = _absorbing_chain(10)
    wave = extract_wavefront(base, delayed, source_rank=0, t0_ns=40,
                             duration_ns=1000)
    assert wave.ranks_reached == 2
    assert 2 not in wave.arrival_ns
    assert wave.peak_shift_ns[2] == 10
    assert not wave.undamped
    # The dead rank still anchors the fit at its causal hop distance:
    # decay length is finite and short.
    assert wave.hops[2] == 2
    assert wave.effective_decay_length < 5


def test_one_off_noise_contract():
    probe = OneOffNoise(1000, 500)
    assert probe.utilization == 0.0
    assert probe.event_rate_hz == 0.0
    assert probe.max_event_duration() == 500
    assert [e.duration for e in probe.events_in(0, 2000)] == [500]
    assert probe.events_in(1501, 3000) == []
    # Aggregate view agrees with the event view on any window.
    for a, b in [(0, 750), (0, 2000), (1200, 1400), (1400, 5000)]:
        assert probe.stolen_between(a, b) == max(
            0, min(b, 1500) - max(a, 1000))
    with pytest.raises(ConfigError):
        OneOffNoise(-1, 10)
    with pytest.raises(ConfigError):
        OneOffNoise(0, 0)


def test_one_off_fault_spec_validation():
    with pytest.raises(ConfigError, match="rank:start:duration"):
        parse_faults("one_off=1:2ms", seed=0)
    with pytest.raises(ConfigError):
        FaultPlan(one_off=((0, 0, 0),))
    with pytest.raises(ConfigError, match="out of range"):
        FaultPlan(one_off=((9, 0, 10),)).one_off_delays_for(4)
    plan = parse_faults("one_off=3:5ms:1ms", seed=7)
    assert plan.injects_faults and not plan.needs_protocol
    assert plan.one_off_delays_for(8) == {3: ((5_000_000, 1_000_000),)}


# -- simulated planted delays ------------------------------------------------------

_RING_SOURCE = 2
_RING_T0 = 1_000_000
_RING_DURATION = 500_000


def _ring_pair(n_nodes=8, *, seed=11, noise="quiet", faults=None):
    cfg = ExperimentConfig(
        app="bsp", nodes=n_nodes, noise_pattern=noise, seed=seed,
        collectives={"allreduce": "ring"}, record_edges=True,
        app_params=dict(iterations=20, work_ns=200_000))
    base = run_experiment(cfg)
    delayed = run_experiment(replace(cfg, faults=faults or FaultPlan(
        one_off=((_RING_SOURCE, _RING_T0, _RING_DURATION),), seed=seed)))
    return base, delayed


def test_ring_wave_arrival_order_is_exact():
    """On a quiet ring the wave must sweep the forward ring order,
    hop-exact — the planted ground truth of the dependency graph."""
    P = 8
    base, delayed = _ring_pair(P)
    wave = extract_wavefront(base.meta["edge_log"], delayed.meta["edge_log"],
                             source_rank=_RING_SOURCE, t0_ns=_RING_T0,
                             duration_ns=_RING_DURATION)
    assert wave.arrival_order() == [(_RING_SOURCE + k) % P for k in range(P)]
    assert wave.hops == {(_RING_SOURCE + k) % P: k for k in range(P)}
    assert wave.ranks_reached == P
    assert wave.speed_ns_per_hop > 0
    assert wave.speed_hops_per_s > 0


def test_quiet_run_preserves_delay_undamped():
    """Zero background noise ⇒ zero absorption: every rank receives
    the full planted delay and the makespan shifts by exactly it."""
    base, delayed = _ring_pair(8)
    wave = extract_wavefront(base.meta["edge_log"], delayed.meta["edge_log"],
                             source_rank=_RING_SOURCE, t0_ns=_RING_T0,
                             duration_ns=_RING_DURATION)
    assert wave.undamped
    assert set(wave.residual_ns.values()) == {_RING_DURATION}
    assert wave.decay_length_ranks is None
    assert delayed.makespan_ns - base.makespan_ns == _RING_DURATION


def test_zero_entry_fault_plan_is_byte_identical():
    """A FaultPlan with no one-off entries must not perturb the run at
    all — arrival extraction aside, the timelines are bit-equal."""
    cfg = ExperimentConfig(
        app="bsp", nodes=8, noise_pattern="quiet", seed=11,
        collectives={"allreduce": "ring"}, record_edges=True,
        app_params=dict(iterations=20, work_ns=200_000))
    plain = run_experiment(cfg)
    empty = run_experiment(replace(cfg, faults=FaultPlan(seed=11)))
    assert plain.makespan_ns == empty.makespan_ns
    assert plain.meta["edge_log"] == empty.meta["edge_log"]


def test_record_edges_meta_wiring():
    cfg = ExperimentConfig(app="bsp", nodes=4, noise_pattern="quiet",
                           seed=3, app_params=dict(iterations=5,
                                                   work_ns=100_000))
    assert "edge_log" not in run_experiment(cfg).meta
    recorded = run_experiment(replace(cfg, record_edges=True))
    log = recorded.meta["edge_log"]
    assert set(log) == {"waits", "starts", "completions"}
    assert sorted(log["waits"]) == [0, 1, 2, 3]
    # record_edges alone does not attach the critical-path table...
    assert "critical_path" not in recorded.meta
    # ...and recording is passive: the run itself is unchanged.
    assert recorded.makespan_ns == run_experiment(cfg).makespan_ns


def test_decay_length_decreases_with_noise_intensity():
    """The Afzal prediction: background noise absorbs the wave, and
    coarse noise (rare huge stalls) kills it faster than fine noise at
    equal utilization.  quiet > 1000 Hz > 10 Hz, strictly."""
    P = 16
    t0, dur, src = 50_000_000, 750_000, 5
    lengths = {}
    for pattern in ("quiet", "10pct@1000HzPoisson", "10pct@10HzPoisson"):
        cfg = ExperimentConfig(
            app="stencil", nodes=P, noise_pattern=pattern, seed=11,
            record_edges=True,
            app_params=dict(iterations=100, work_ns=2_000_000,
                            dt_interval=0))
        base = run_experiment(cfg)
        delayed = run_experiment(replace(cfg, faults=FaultPlan(
            one_off=((src, t0, dur),), seed=11)))
        wave = extract_wavefront(
            base.meta["edge_log"], delayed.meta["edge_log"],
            source_rank=src, t0_ns=t0, duration_ns=dur)
        lengths[pattern] = wave.effective_decay_length
    assert lengths["quiet"] == float("inf")
    assert (lengths["quiet"] > lengths["10pct@1000HzPoisson"]
            > lengths["10pct@10HzPoisson"])


def test_e20_report_serial_equals_workers():
    """The E20 report must be byte-identical between in-process serial
    execution and --workers process fan-out (edge logs ride RunResult
    meta across pickling)."""
    serial = run_harness_experiment("E20", "small").render()
    set_execution_policy(workers=2)
    try:
        fanned = run_harness_experiment("E20", "small").render()
    finally:
        set_execution_policy(workers=1)
    assert serial == fanned
    assert "[PASS]" in serial and "[FAIL]" not in serial
