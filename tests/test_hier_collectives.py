"""Node-aware (two-level) collective algorithms: correctness + selection."""

import pytest

from repro.core import Machine, MachineConfig
from repro.errors import MPIError
from repro.mpi import collectives

SHAPE = "1x4x2@fat-tree"  # group size 4 for the two-level split


def _run(n_nodes, program, **machine_kw):
    m = Machine(MachineConfig(n_nodes=n_nodes, **machine_kw))
    procs = m.launch(program)
    m.run_to_completion(procs)
    return [p.value for p in procs]


# -- correctness across shapes (incl. ragged tail groups) --------------------
@pytest.mark.parametrize("alg", ["two-level", "two-level-ring"])
@pytest.mark.parametrize("P", [4, 8, 12, 18, 20])
def test_two_level_allreduce_sums(alg, P):
    if alg == "two-level" and P in (12, 18, 20):
        pytest.skip("rd leader phase needs a power-of-two leader count")

    def prog(ctx):
        return (yield from ctx.allreduce(size=8, payload=ctx.rank + 1,
                                         algorithm=alg))

    values = _run(P, prog, shape=SHAPE)
    assert values == [P * (P + 1) // 2] * P


@pytest.mark.parametrize("P", [4, 8, 13, 18])
def test_two_level_barrier_synchronizes(P):
    def prog(ctx):
        yield from ctx.compute(1000 * (ctx.rank + 1))
        yield from ctx.barrier(algorithm="two-level")
        return ctx.env.now

    exits = _run(P, prog, shape=SHAPE)
    assert min(exits) >= 1000 * P


@pytest.mark.parametrize("P", [4, 8, 13, 18])
def test_two_level_bcast_delivers(P):
    def prog(ctx):
        data = "payload" if ctx.rank == 0 else None
        return (yield from ctx.bcast(size=64, root=0, payload=data,
                                     algorithm="two-level"))

    assert _run(P, prog, shape=SHAPE) == ["payload"] * P


def test_two_level_without_shape_rejected():
    def prog(ctx):
        return (yield from ctx.allreduce(size=8, payload=1,
                                         algorithm="two-level"))

    with pytest.raises(MPIError):
        _run(8, prog)  # no shape -> no intra/inter split to exploit


# -- machine-wide selection ---------------------------------------------------
def test_collectives_config_overrides_default():
    def prog(ctx):
        # No per-call algorithm: resolves through the machine table.
        return (yield from ctx.allreduce(size=8, payload=ctx.rank + 1))

    values = _run(8, prog, shape=SHAPE,
                  collectives={"allreduce": "two-level"})
    assert values == [36] * 8


def test_collectives_config_validated_at_build():
    with pytest.raises(MPIError):
        Machine(MachineConfig(n_nodes=8, shape=SHAPE,
                              collectives={"allreduce": "nope"}))
    with pytest.raises(MPIError):
        Machine(MachineConfig(n_nodes=8, shape=SHAPE,
                              collectives={"frobnicate": "two-level"}))


def test_per_call_algorithm_beats_machine_table():
    def prog(ctx):
        return (yield from ctx.allreduce(
            size=8, payload=ctx.rank + 1, algorithm="recursive-doubling"))

    values = _run(8, prog, shape=SHAPE,
                  collectives={"allreduce": "two-level"})
    assert values == [36] * 8


def test_registry_exposes_two_level_algorithms():
    assert "two-level" in collectives.algorithms_for("allreduce")
    assert "two-level-ring" in collectives.algorithms_for("allreduce")
    assert "two-level" in collectives.algorithms_for("barrier")
    assert "two-level" in collectives.algorithms_for("bcast")


def test_two_level_reduces_off_node_traffic():
    """The hierarchy's structural win: far fewer off-node messages.

    (Quiet *latency* can still favour flat recursive doubling — its
    distance doubling crosses each packaging level only about once on
    a block-mapped machine — but every off-node message is a chance
    for noise to land on the critical path, which is what E17
    measures.)
    """
    from repro.mpi.collectives.bulk import rounds_for
    from repro.net import MachineShape

    shape = MachineShape.parse("4x2x2@fat-tree")

    def off_node(alg):
        rounds = rounds_for("allreduce", alg, 32, size=8,
                            reduce_cost_per_byte=0.25, shape=shape)
        return sum(
            int((shape.level_of_vec(r.senders, r.dst) >= 2).sum())
            for r in rounds)

    assert off_node("two-level") < off_node("recursive-doubling") / 2
