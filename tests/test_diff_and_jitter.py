"""Tests for profile diffing and network latency jitter."""

import pytest

from repro.apps import StencilApp
from repro.core import Machine, MachineConfig
from repro.errors import ConfigError
from repro.ktau import KtauTracer, build_kernel_profile, diff_profiles
from repro.net import LogGPParams
from repro.sim import MS


def _profile_for(kernel: str, seed: int = 5):
    machine = Machine(MachineConfig(n_nodes=4, kernel=kernel, seed=seed))
    tracer = KtauTracer(machine)
    app = StencilApp(work_ns=20 * MS, halo_bytes=4096, iterations=60,
                     dt_interval=0).bind_tracer(tracer)
    machine.run_to_completion(machine.launch(app))
    return build_kernel_profile(tracer, 0, 0, machine.env.now)


# -- profile diffing -------------------------------------------------------------

def test_diff_commodity_vs_tuned_shows_improvement():
    before = _profile_for("commodity-linux")
    after = _profile_for("tuned-linux")
    diff = diff_profiles(before, after)
    # Tuning lowered total kernel share.
    assert diff.utilization_delta < 0
    # The timer interrupt got cheaper (HZ 1000 -> 100).
    timer = [d for d in diff.deltas if d.source == "timer-irq"][0]
    assert timer.after_rate_hz < timer.before_rate_hz
    assert timer.utilization_delta < 0
    # Daemons that were removed vanish from the profile.
    vanished = {d.source for d in diff.deltas if d.vanished}
    assert "pdflush" in vanished or "ntpd" in vanished or "cron-monitor" in vanished


def test_diff_improvements_and_regressions_partition():
    before = _profile_for("commodity-linux")
    after = _profile_for("tuned-linux")
    diff = diff_profiles(before, after)
    imps = diff.improvements()
    regs = diff.regressions()
    assert all(d.utilization_delta < 0 for d in imps)
    assert all(d.utilization_delta > 0 for d in regs)
    # Sorted: best improvement first.
    deltas = [d.utilization_delta for d in imps]
    assert deltas == sorted(deltas)


def test_diff_same_profile_is_neutral():
    prof = _profile_for("tuned-linux")
    diff = diff_profiles(prof, prof)
    assert diff.utilization_delta == 0
    assert not diff.improvements()
    assert not diff.regressions()
    assert not any(d.appeared or d.vanished for d in diff.deltas)


# -- network jitter ---------------------------------------------------------------

def _ping(params: LogGPParams, seed: int = 0, n: int = 20) -> list[int]:
    m = Machine(MachineConfig(n_nodes=2, network=params, seed=seed))
    times = []

    def sender(ctx):
        for i in range(n):
            t0 = ctx.env.now
            yield from ctx.send(1, size=0, tag=i)
            msg = yield from ctx.recv(1, tag=i)
            times.append(ctx.env.now - t0)

    def echo(ctx):
        for i in range(n):
            yield from ctx.recv(0, tag=i)
            yield from ctx.send(0, size=0, tag=i)

    p0 = m.env.process(sender(m.mpi.rank_context(0)))
    p1 = m.env.process(echo(m.mpi.rank_context(1)))
    m.run_to_completion([p0, p1])
    return times


def test_zero_jitter_is_deterministic():
    times = _ping(LogGPParams(L=5000, o=500, g=0, G=0.0))
    assert len(set(times)) == 1


def test_jitter_spreads_latency():
    params = LogGPParams(L=5000, o=500, g=0, G=0.0, jitter_ns=2000)
    times = _ping(params)
    assert len(set(times)) > 1
    base = min(_ping(LogGPParams(L=5000, o=500, g=0, G=0.0)))
    assert min(times) >= base
    assert max(times) <= base + 2 * 2000  # two one-way jitters per ping


def test_jitter_deterministic_per_seed():
    params = LogGPParams(L=5000, o=500, g=0, G=0.0, jitter_ns=2000)
    assert _ping(params, seed=1) == _ping(params, seed=1)
    assert _ping(params, seed=1) != _ping(params, seed=2)


def test_negative_jitter_rejected():
    with pytest.raises(ConfigError):
        LogGPParams(jitter_ns=-1)
