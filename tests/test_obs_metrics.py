"""Unit tests for :mod:`repro.obs`: registry, tracer, runtime switch."""

import json

import pytest

from repro import obs
from repro.core import Machine, MachineConfig
from repro.errors import ConfigError
from repro.obs import (
    DEFAULT_TRACE_CATEGORIES,
    HOST,
    SIM,
    TRACE_CATEGORIES,
    MetricsRegistry,
    SpanTracer,
    diff_snapshots,
)
from repro.obs.metrics import DELIVERY_LATENCY_BOUNDS
from repro.obs.runtime import parse_categories


# -- counters / gauges ---------------------------------------------------------

def test_counter_increments_and_rejects_decrease():
    reg = MetricsRegistry()
    c = reg.counter("x.total")
    c.inc()
    c.inc(4)
    assert c.value == 5
    with pytest.raises(ConfigError):
        c.inc(-1)


def test_gauge_set_and_track_max():
    reg = MetricsRegistry()
    g = reg.gauge("x.depth")
    g.set(7)
    g.set(3)
    assert g.value == 3
    g.track_max(10)
    g.track_max(2)
    assert g.value == 10


# -- histograms ---------------------------------------------------------------

def test_histogram_bucket_placement_and_overflow():
    reg = MetricsRegistry()
    h = reg.histogram("lat", bounds=(10, 100, 1000))
    for v in (5, 10, 11, 1000, 5000):
        h.observe(v)
    assert h.count == 5
    assert h.total == 5 + 10 + 11 + 1000 + 5000
    # <=10: {5, 10}; <=100: {11}; <=1000: {1000}; +Inf: {5000}
    assert h.bucket_counts == [2, 1, 1, 1]
    snap = h.as_value()
    assert snap["buckets"] == {"10": 2, "100": 1, "1000": 1, "+Inf": 1}


def test_histogram_rejects_unsorted_bounds():
    from repro.obs.metrics import Histogram

    reg = MetricsRegistry()
    with pytest.raises(ConfigError):
        reg.histogram("bad", bounds=(100, 10))
    with pytest.raises(ConfigError):
        Histogram("empty", (), SIM, bounds=())
    # The registry treats an empty bounds argument as "use defaults".
    h = reg.histogram("defaulted", bounds=())
    assert len(h.bounds) > 0


# -- registry -----------------------------------------------------------------

def test_registry_get_or_create_identity_and_labels():
    reg = MetricsRegistry()
    a = reg.counter("ops", op="send")
    b = reg.counter("ops", op="send")
    c = reg.counter("ops", op="recv")
    assert a is b and a is not c
    a.inc(2)
    c.inc(1)
    snap = reg.snapshot()
    assert snap == {"ops{op=recv}": 1, "ops{op=send}": 2}
    assert list(snap) == sorted(snap)  # deterministic key order


def test_registry_type_and_scope_conflicts():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ConfigError):
        reg.gauge("x")
    reg.gauge("y", scope=SIM)
    with pytest.raises(ConfigError):
        reg.gauge("y", scope=HOST)
    with pytest.raises(ConfigError):
        reg.counter("z", scope="bogus")


def test_snapshot_sim_only_drops_host_metrics():
    reg = MetricsRegistry()
    reg.counter("sim.thing").inc()
    reg.gauge("wall.thing", scope=HOST).set(1.5)
    assert "wall.thing" in reg.snapshot()
    assert reg.snapshot(sim_only=True) == {"sim.thing": 1}


def test_registry_render_and_reset():
    reg = MetricsRegistry()
    reg.counter("a.total").inc(3)
    reg.histogram("b.lat", bounds=(10,)).observe(4)
    text = reg.render()
    assert "a.total: 3" in text
    assert "b.lat: count=1 sum=4" in text
    reg.reset()
    assert len(reg) == 0 and reg.render() == ""


def test_diff_snapshots_counters_histograms_and_new_keys():
    before = {"c": 2, "same": 5,
              "h": {"count": 1, "sum": 10, "buckets": {"10": 1, "+Inf": 0}}}
    after = {"c": 7, "same": 5, "new": 3,
             "h": {"count": 3, "sum": 40, "buckets": {"10": 2, "+Inf": 1}}}
    d = diff_snapshots(before, after)
    assert d["c"] == 5
    assert d["new"] == 3
    assert "same" not in d  # unchanged metrics dropped
    assert d["h"] == {"count": 2, "sum": 30, "buckets": {"10": 1, "+Inf": 1}}


# -- span tracer --------------------------------------------------------------

def test_tracer_rejects_unknown_categories_and_bad_cap():
    with pytest.raises(ConfigError):
        SpanTracer(["nope"])
    with pytest.raises(ConfigError):
        SpanTracer(cap=0)


def test_tracer_default_categories_exclude_sim_firehose():
    tr = SpanTracer()
    assert tr.categories == frozenset(DEFAULT_TRACE_CATEGORIES)
    assert not tr.enabled("sim")
    assert tr.enabled("net")
    assert SpanTracer(TRACE_CATEGORIES).enabled("sim")


def test_tracer_category_gating():
    tr = SpanTracer(["net"])
    assert tr.enabled("net") and not tr.enabled("mpi")


def test_tracer_ring_buffer_caps_and_keeps_newest():
    tr = SpanTracer(["sim"], cap=5)
    for i in range(8):
        tr.instant("sim", f"e{i}", i * 1000)
    assert len(tr) == 5
    assert tr.dropped == 3
    names = [e["name"] for e in tr.events()]
    assert names == ["e3", "e4", "e5", "e6", "e7"]  # oldest overwritten


def test_tracer_chrome_output_is_valid_trace_event_json(tmp_path):
    tr = SpanTracer(["net", "harness"])
    tr.complete("net", "msg", 2_000, 1_500, tid=3,
                args=("src", 1, "size", 64, "kind", "data"))
    tr.instant("net", "drop", 5_000, args={"why": "fault"})
    tr.host_span("harness", "E1", tr._t0 + 0.5, 0.25, args={"scale": "small"})
    path = tmp_path / "trace.json"
    n = tr.write(str(path))
    assert n == 3

    doc = json.loads(path.read_text())
    assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
    events = doc["traceEvents"]
    # Two metadata records name the sim / host process rows.
    meta = [e for e in events if e["ph"] == "M"]
    assert {m["pid"] for m in meta} == {1, 2}

    span = next(e for e in events if e["ph"] == "X" and e["cat"] == "net")
    assert span["ts"] == 2.0 and span["dur"] == 1.5  # ns -> us
    assert span["pid"] == 1 and span["tid"] == 3
    assert span["args"] == {"src": 1, "size": 64, "kind": "data"}

    inst = next(e for e in events if e["ph"] == "i")
    assert inst["s"] == "t" and inst["args"] == {"why": "fault"}

    host = next(e for e in events if e.get("pid") == 2 and e["ph"] == "X")
    assert host["ts"] == pytest.approx(0.5e6, rel=0.01)
    assert host["dur"] == pytest.approx(0.25e6, rel=0.01)

    other = doc["otherData"]
    assert other["dropped_events"] == 0
    assert "net" in other["categories"]


# -- runtime switchboard ------------------------------------------------------

def test_parse_categories():
    assert parse_categories(None) is None
    assert parse_categories("  ") is None
    assert parse_categories("all") == list(TRACE_CATEGORIES)
    assert parse_categories("net, mpi") == ["net", "mpi"]


def test_configure_trace_implies_metrics_and_disable_resets():
    assert not obs.metrics_enabled()
    obs.configure(trace=True)
    assert obs.metrics_enabled()
    assert obs.tracer() is not None
    obs.registry().counter("x").inc()
    obs.configure(trace=False)
    assert obs.tracer() is None
    obs.disable()
    assert not obs.metrics_enabled()
    assert len(obs.registry()) == 0  # fresh registry


def test_write_trace_requires_configuration(tmp_path):
    with pytest.raises(ConfigError):
        obs.write_trace()
    obs.configure(trace=str(tmp_path / "t.json"))
    path, n = obs.write_trace()
    assert path.endswith("t.json") and n == 0


def test_network_latency_bounds_stay_in_sync_with_registry():
    # Network keeps a private literal copy of the delivery-latency
    # bounds so it never imports repro.obs; harvest re-observes its
    # bucket counts into the registry histogram, which only works if
    # the two bound tuples are identical.
    machine = Machine(MachineConfig(n_nodes=2, seed=0))
    assert machine.network._latency_bounds == DELIVERY_LATENCY_BOUNDS


def test_harvest_populates_sim_metrics():
    obs.configure(metrics=True)
    machine = Machine(MachineConfig(n_nodes=4, seed=1))

    def prog(ctx):
        yield from ctx.allreduce(size=8, payload=1)

    procs = machine.launch(prog)
    machine.run_to_completion(procs)
    machine.finalize_telemetry()
    snap = obs.registry().snapshot(sim_only=True)
    assert snap["sim.runs"] == 1
    assert snap["sim.events_processed"] > 0
    assert snap["sim.events_scheduled"] >= snap["sim.events_processed"]
    assert snap["net.messages_total"] > 0
    assert snap["mpi.ops_total{op=allreduce}"] == 4
    lat = snap["net.delivery_latency_ns"]
    assert lat["count"] == snap["net.messages_total"]
    # finalize_telemetry is idempotent: a second call must not double.
    machine.finalize_telemetry()
    assert obs.registry().snapshot(sim_only=True)["sim.runs"] == 1


def test_configure_toggles_on_off_on_across_runs():
    """The switchboard must be re-entrant within one process: each
    flag (metrics, trace, det_check, critical_path) flips on, off, and
    on again across real runs without stale state leaking through."""
    from repro.core import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(app="bsp", nodes=2, noise_pattern="quiet",
                           app_params={"work_ns": 500_000,
                                       "iterations": 5})

    # metrics: on -> fed; off -> untouched; on -> fed again (fresh).
    obs.configure(metrics=True)
    run_experiment(cfg)
    assert obs.registry().snapshot()["sim.runs"] == 1
    obs.disable()
    run_experiment(cfg)
    assert "sim.runs" not in obs.registry().snapshot()
    obs.configure(metrics=True)
    run_experiment(cfg)
    assert obs.registry().snapshot()["sim.runs"] == 1
    obs.disable()

    # det_check rides RunResult.meta.
    obs.configure(det_check=True)
    assert "det_check" in run_experiment(cfg).meta
    obs.configure(det_check=False)
    assert "det_check" not in run_experiment(cfg).meta
    obs.configure(det_check=True)
    assert "det_check" in run_experiment(cfg).meta
    obs.disable()

    # critical_path: the process-wide switch arms edge recording on
    # every machine built while it is on (machines capture it at
    # build time, like the tracer).
    for expected in (True, False, True):
        obs.configure(critical_path=expected)
        machine = Machine(MachineConfig(n_nodes=2, seed=0))
        assert (machine.critpath is not None) is expected
    obs.disable()

    # trace: machines capture the tracer at build time, so toggling
    # must swap what subsequent runs record without a restart.
    obs.configure(trace=True, trace_categories=["mpi"])
    run_experiment(cfg)
    first = len(obs.tracer().events())
    assert first > 0
    obs.configure(trace=False)
    assert obs.tracer() is None
    run_experiment(cfg)  # no tracer to feed: must not crash
    obs.configure(trace=True, trace_categories=["mpi"])
    run_experiment(cfg)
    assert len(obs.tracer().events()) == first  # fresh ring
    obs.disable()


def test_registry_snapshot_and_render_key_order_is_stable():
    """Snapshot/render keys sort by (name, labels) regardless of
    creation order — scrape diffs must not churn."""
    a, b = MetricsRegistry(), MetricsRegistry()
    a.counter("z.total", op="b").inc(1)
    a.counter("z.total", op="a").inc(2)
    a.counter("a.total").inc(3)
    b.counter("a.total").inc(3)
    b.counter("z.total", op="a").inc(2)
    b.counter("z.total", op="b").inc(1)
    assert list(a.snapshot()) == list(b.snapshot()) == \
        ["a.total", "z.total{op=a}", "z.total{op=b}"]
    assert a.render() == b.render()


def test_registry_labels_with_awkward_values_render_and_escape():
    """Label values with spaces/quotes/newlines survive the plain
    render and are escaped (and round-trip) in Prometheus exposition."""
    from repro.obs import prom

    reg = MetricsRegistry()
    nasty = 'P=4 "quoted"\npattern'
    reg.counter("serve.points_total", HOST, label=nasty).inc(1)
    assert f"serve.points_total{{label={nasty}}}: 1" in reg.render()
    text = prom.render(reg)
    assert "\\n" in text and '\\"' in text
    samples, _types = prom.validate(text)
    assert dict(samples[0].labels)["label"] == nasty
