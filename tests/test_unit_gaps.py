"""Edge-case tests for previously under-covered units.

Targets three gaps the observability work leaned on: the ktau raw-trace
export (:func:`repro.ktau.export.trace_to_rows`), trace-playback noise
(:class:`repro.noise.TraceNoise` cyclic tiling and derived stats), and
the lazy-cancel life cycle of :class:`repro.sim.events.Event` that the
event-queue accounting in :mod:`repro.obs` depends on.
"""

import pytest

from repro.core import Machine, MachineConfig
from repro.errors import SimulationError
from repro.ktau import KtauTracer
from repro.ktau.export import trace_to_rows
from repro.noise import NoiseEvent, TraceNoise
from repro.sim import MS, Environment


# -- ktau trace export -------------------------------------------------------

def _traced_run(n_iter=4, work=2 * MS):
    machine = Machine(MachineConfig(n_nodes=2, kernel="commodity-linux",
                                    seed=3))
    tracer = KtauTracer(machine, level="trace")

    def prog(ctx):
        for _ in range(n_iter):
            yield from ctx.compute(work)
            yield from ctx.allreduce(size=8)

    machine.run_to_completion(machine.launch(prog))
    return machine, tracer


def test_trace_to_rows_shape_and_window():
    machine, tracer = _traced_run()
    rows = trace_to_rows(tracer, 0, 0, machine.env.now)
    assert rows
    assert set(rows[0]) == {"node", "source", "kind", "start_ns",
                            "duration_ns"}
    assert all(r["node"] == 0 for r in rows)
    assert all(r["duration_ns"] > 0 for r in rows)
    # Rows arrive merged in time order.
    starts = [r["start_ns"] for r in rows]
    assert starts == sorted(starts)

    # Restricting the window drops events outside it.
    mid = machine.env.now // 2
    head = trace_to_rows(tracer, 0, 0, mid)
    assert 0 < len(head) < len(rows)
    assert all(r["start_ns"] < mid for r in head)


def test_trace_to_rows_empty_window_and_other_node():
    machine, tracer = _traced_run()
    assert trace_to_rows(tracer, 0, 0, 0) == []
    other = trace_to_rows(tracer, 1, 0, machine.env.now)
    assert other
    assert all(r["node"] == 1 for r in other)


# -- trace-playback noise ----------------------------------------------------

def test_trace_noise_accepts_noise_events_and_keeps_stable_order():
    src = TraceNoise([NoiseEvent(100, 20, "x"), (10, 5), (100, 7)])
    evs = src.events_in(0, 200)
    assert [(e.start, e.duration) for e in evs] == [(10, 5), (100, 20),
                                                   (100, 7)]
    assert all(e.source == "trace" for e in evs)


def test_trace_noise_cyclic_tiling_across_cycle_boundaries():
    src = TraceNoise([(10, 5), (60, 8)], repeat_every=100)
    # A window spanning three cycles sees each event once per cycle.
    evs = src.events_in(50, 280)
    assert [(e.start, e.duration) for e in evs] == [
        (60, 8), (110, 5), (160, 8), (210, 5), (260, 8)]
    # Window edges: start is inclusive, end exclusive.
    assert [(e.start) for e in src.events_in(110, 111)] == [110]
    assert src.events_in(111, 160) == []
    assert src.events_in(50, 50) == []


def test_trace_noise_utilization_and_rate():
    src = TraceNoise([(0, 10), (5, 10), (50, 10)], repeat_every=200)
    # Overlapping events merge: busy time is 15 + 10, not 30.
    assert src.utilization == pytest.approx(25 / 200)
    assert src.event_rate_hz == pytest.approx(3 * 1e9 / 200)
    assert src.max_event_duration() == 10

    once = TraceNoise([(0, 10)])
    assert once.event_rate_hz == 0.0  # finite trace: no long-run rate
    assert once.utilization == pytest.approx(1.0)


def test_trace_noise_describe():
    src = TraceNoise([(10, 5), (60, 8)], repeat_every=100, name="replay")
    d = src.describe()
    assert d["name"] == "replay"
    assert d["n_events"] == 2
    assert d["repeat_every_ns"] == 100


# -- lazy event cancellation -------------------------------------------------

def test_cancel_processed_event_raises_and_cancel_is_idempotent():
    env = Environment()
    ev = env.timeout(5)
    ev.cancel()
    ev.cancel()  # second cancel is a no-op
    assert ev.cancelled

    done = env.timeout(10)
    env.run()
    assert done.processed
    with pytest.raises(SimulationError):
        done.cancel()


def test_trigger_after_cancel_raises():
    env = Environment()
    ev = env.event()
    ev.cancel()
    with pytest.raises(SimulationError):
        ev.succeed("late")
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("late"))


def test_cancelled_events_feed_queue_accounting():
    env = Environment(metrics=True)
    for _ in range(3):
        env.timeout(10).cancel()
    live = env.timeout(20)
    env.run()
    assert live.processed
    assert env.events_processed == 1
    assert env.events_cancelled == 3
    # The derived scheduled total covers processed + discarded + queued.
    assert env.events_scheduled == 4
    assert len(env._queue) == 0


def test_cancelled_callbacks_are_cleared_and_never_run():
    env = Environment()
    fired = []
    ev = env.timeout(10)
    ev.callbacks.append(lambda e: fired.append("no"))
    ev.cancel()
    assert ev.callbacks == []
    env.run()
    assert fired == []
    assert not ev.processed
