"""Unit tests for the DES engine: environment, events, ordering."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import (
    PRIORITY_LAZY,
    PRIORITY_URGENT,
    Environment,
    Event,
)


def test_clock_starts_at_zero():
    assert Environment().now == 0


def test_clock_starts_at_initial_time():
    assert Environment(initial_time=123).now == 123


def test_negative_initial_time_rejected():
    with pytest.raises(ValueError):
        Environment(initial_time=-1)


def test_timeout_advances_clock():
    env = Environment()
    env.timeout(100)
    env.run()
    assert env.now == 100


def test_run_until_time_stops_before_event():
    env = Environment()
    fired = []
    ev = env.timeout(100)
    ev.callbacks.append(lambda e: fired.append(env.now))
    env.run(until=100)  # events AT until are not processed
    assert env.now == 100
    assert fired == []
    env.run(until=101)
    assert fired == [100]


def test_run_until_time_with_empty_queue_jumps_clock():
    env = Environment()
    env.run(until=5000)
    assert env.now == 5000


def test_run_until_past_time_rejected():
    env = Environment()
    env.timeout(10)
    env.run()
    with pytest.raises(SimulationError):
        env.run(until=5)


def test_same_instant_events_fifo_order():
    env = Environment()
    order = []
    for i in range(5):
        ev = env.timeout(50)
        ev.callbacks.append(lambda e, i=i: order.append(i))
    env.run()
    assert order == [0, 1, 2, 3, 4]


def test_priority_beats_fifo_at_same_instant():
    env = Environment()
    order = []

    lazy = Event(env)
    lazy.callbacks.append(lambda e: order.append("lazy"))
    lazy._ok = True
    lazy._value = None
    env.schedule(lazy, delay=10, priority=PRIORITY_LAZY)

    urgent = Event(env)
    urgent.callbacks.append(lambda e: order.append("urgent"))
    urgent._ok = True
    urgent._value = None
    env.schedule(urgent, delay=10, priority=PRIORITY_URGENT)

    env.run()
    assert order == ["urgent", "lazy"]


def test_schedule_into_past_rejected():
    env = Environment()
    with pytest.raises(SimulationError):
        env.schedule(Event(env), delay=-1)


def test_step_empty_queue_raises():
    with pytest.raises(SimulationError):
        Environment().step()


def test_peek_returns_next_timestamp():
    env = Environment()
    assert env.peek() is None
    env.timeout(30)
    env.timeout(10)
    assert env.peek() == 10


def test_event_succeed_carries_value():
    env = Environment()
    ev = env.event()
    ev.succeed("payload")
    env.run()
    assert ev.processed
    assert ev.ok
    assert ev.value == "payload"


def test_event_double_succeed_rejected():
    env = Environment()
    ev = env.event()
    ev.succeed()
    with pytest.raises(SimulationError):
        ev.succeed()


def test_event_fail_requires_exception():
    env = Environment()
    with pytest.raises(TypeError):
        env.event().fail("not an exception")  # type: ignore[arg-type]


def test_pending_event_value_raises():
    env = Environment()
    with pytest.raises(SimulationError):
        _ = env.event().value


def test_negative_timeout_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.timeout(-5)


def test_events_processed_counter():
    env = Environment()
    for _ in range(7):
        env.timeout(1)
    env.run()
    assert env.events_processed == 7


def test_interleaved_timestamps_process_in_time_order():
    env = Environment()
    seen = []
    for delay in (30, 10, 20, 10, 5):
        ev = env.timeout(delay)
        ev.callbacks.append(lambda e, d=delay: seen.append((env.now, d)))
    env.run()
    assert [t for t, _ in seen] == sorted(t for t, _ in seen)
    assert seen[0] == (5, 5)
    assert seen[-1] == (30, 30)


def test_run_until_event_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(42)
        return "done"

    p = env.process(proc(env))
    assert env.run(until=p) == "done"
    assert env.now == 42


def test_run_until_never_firing_event_deadlocks():
    env = Environment()
    orphan = env.event()

    def waiter(env):
        yield orphan

    env.process(waiter(env))
    with pytest.raises(DeadlockError):
        env.run(until=orphan)


# -- run(until=<int>) edge semantics ----------------------------------------

def test_run_until_now_leaves_same_instant_events_pending():
    """run(until=now) is a no-op: events at exactly now stay queued."""
    env = Environment()
    fired = []
    ev = env.timeout(100)
    ev.callbacks.append(lambda e: fired.append(env.now))
    env.run(until=100)
    assert env.now == 100
    # stop_time == now with an event queued at exactly now: untouched.
    env.run(until=100)
    assert fired == []
    assert env.peek() == 100
    env.run()
    assert fired == [100]


def test_peek_after_clock_jump_on_drain():
    """When the queue drains before until, the clock jumps and peek()
    reports an empty queue."""
    env = Environment()
    env.timeout(10)
    env.run(until=5000)
    assert env.now == 5000
    assert env.peek() is None


# -- run_until_empty --------------------------------------------------------

def test_run_until_empty_drains_queue():
    env = Environment()
    for delay in (5, 10, 15):
        env.timeout(delay)
    env.run_until_empty()
    assert env.now == 15
    assert env.events_processed == 3
    assert env.peek() is None


def test_run_until_empty_cap_raises():
    env = Environment()

    def ticker(env):
        while True:  # runaway workload: queue never drains
            yield env.timeout(10)

    env.process(ticker(env))
    with pytest.raises(SimulationError, match="max_events"):
        env.run_until_empty(max_events=100)


def test_run_until_empty_cap_not_hit_when_queue_fits():
    env = Environment()
    for _ in range(10):
        env.timeout(1)
    env.run_until_empty(max_events=100)
    assert env.events_processed == 10


def test_run_until_empty_invalid_cap():
    with pytest.raises(ValueError):
        Environment().run_until_empty(max_events=0)


def test_run_until_empty_detects_deadlock():
    env = Environment()
    orphan = env.event()

    def waiter(env):
        yield orphan

    env.process(waiter(env))
    with pytest.raises(DeadlockError):
        env.run_until_empty()


# -- lazy cancellation ------------------------------------------------------

def test_cancelled_timeout_is_skipped():
    env = Environment()
    fired = []
    victim = env.timeout(10)
    victim.callbacks.append(lambda e: fired.append("victim"))
    keeper = env.timeout(20)
    keeper.callbacks.append(lambda e: fired.append("keeper"))
    victim.cancel()
    env.run()
    assert fired == ["keeper"]
    assert victim.cancelled
    assert not victim.processed
    # Cancelled events never count as processed.
    assert env.events_processed == 1


def test_cancel_is_lazy_no_heap_surgery():
    env = Environment()
    victim = env.timeout(10)
    victim.cancel()
    # The entry is still in the heap until popped or peeked past...
    assert len(env._queue) == 1
    # ...but peek() discards cancelled heads.
    assert env.peek() is None


def test_step_skips_cancelled_events():
    env = Environment()
    fired = []
    env.timeout(10).cancel()
    live = env.timeout(20)
    live.callbacks.append(lambda e: fired.append(env.now))
    env.step()
    assert fired == [20]


def test_step_raises_when_only_cancelled_events_remain():
    env = Environment()
    env.timeout(10).cancel()
    with pytest.raises(SimulationError):
        env.step()


def test_cancel_twice_is_noop():
    env = Environment()
    ev = env.timeout(10)
    ev.cancel()
    ev.cancel()
    assert ev.cancelled


def test_cancel_processed_event_rejected():
    env = Environment()
    ev = env.timeout(10)
    env.run()
    with pytest.raises(SimulationError):
        ev.cancel()


def test_succeed_after_cancel_rejected():
    env = Environment()
    ev = env.event()
    ev.cancel()
    with pytest.raises(SimulationError):
        ev.succeed()
    with pytest.raises(SimulationError):
        ev.fail(RuntimeError("boom"))


def test_run_until_time_skips_cancelled_then_jumps():
    env = Environment()
    env.timeout(10).cancel()
    env.run(until=100)
    assert env.now == 100
    assert env.peek() is None
