"""Tests for the measurement microbenchmarks."""

import numpy as np
import pytest

from repro.core import Machine, MachineConfig
from repro.errors import ConfigError
from repro.kernel import KernelConfig, Node
from repro.microbench import (
    CollectiveBenchmark,
    FTQBenchmark,
    FWQBenchmark,
    PSNAPBenchmark,
    SelfishBenchmark,
)
from repro.noise import InjectionPlan, PeriodicNoise
from repro.sim import Environment, MS, SEC, US


def _quiet_node():
    env = Environment()
    return Node(env, 0, KernelConfig.lightweight())


def _noisy_node(pattern="2.5pct@100Hz", seed=0):
    m = Machine(MachineConfig(n_nodes=1, kernel="lightweight",
                              injection=InjectionPlan(pattern, seed=seed,
                                                      alignment="synchronized")))
    return m.nodes[0]


# -- FTQ ----------------------------------------------------------------------

def test_ftq_quiet_machine_is_flat():
    res = FTQBenchmark(n_quanta=256).run(_quiet_node())
    assert (res.counts == res.max_count).all()
    assert res.noise_fraction == 0.0
    assert (res.missing_work() == 0).all()


def test_ftq_detects_injected_utilization():
    res = FTQBenchmark(n_quanta=2048).run(_noisy_node())
    assert res.noise_fraction == pytest.approx(0.025, rel=0.05)
    assert res.counts.min() < res.max_count


def test_ftq_spectrum_shows_noise_frequency():
    from repro.analysis import find_peaks
    res = FTQBenchmark(n_quanta=4096).run(_noisy_node("2.5pct@10Hz"))
    peaks = find_peaks(res.spectrum(), top=3)
    assert peaks, "expected spectral peaks"
    # Strongest peak at 10 Hz (or a low harmonic).
    assert any(abs(p.frequency_hz - 10.0) / 10.0 < 0.1 for p in peaks)


def test_ftq_parameter_validation():
    with pytest.raises(ConfigError):
        FTQBenchmark(quantum_ns=0)
    with pytest.raises(ConfigError):
        FTQBenchmark(unit_work_ns=2 * MS, quantum_ns=MS)


def test_ftq_process_variant_matches_direct_run():
    node = _noisy_node()
    bench = FTQBenchmark(n_quanta=128)
    direct = bench.run(node, start_time=0)
    out = {}
    proc = node.env.process(bench.process(node, out), name="ftq")
    node.env.run(until=proc)
    assert (out[0].counts == direct.counts).all()


# -- FWQ -----------------------------------------------------------------------

def test_fwq_quiet_machine_exact():
    res = FWQBenchmark(work_ns=50 * US, n_samples=64).run(_quiet_node())
    assert (res.samples_ns == 50 * US).all()
    assert res.noise_fraction == 0.0


def test_fwq_detects_noise_events():
    res = FWQBenchmark(work_ns=100 * US, n_samples=2048).run(_noisy_node())
    struck = res.struck_samples()
    assert len(struck) > 0
    # Detours roughly the injected event size (250 us at 100 Hz).
    assert res.detour_ns.max() >= 200 * US
    assert res.noise_fraction == pytest.approx(0.025, rel=0.3)


def test_fwq_validation():
    with pytest.raises(ConfigError):
        FWQBenchmark(work_ns=0)


# -- selfish ----------------------------------------------------------------------

def test_selfish_detects_individual_events():
    node = _noisy_node("2.5pct@10Hz")  # 2.5 ms every 100 ms
    res = SelfishBenchmark(window_ns=1 * SEC).run(node, start_time=0)
    assert res.count == 10
    assert (res.durations_ns() == 2500 * US).all()
    assert res.detour_fraction == pytest.approx(0.025, rel=0.01)
    gaps = res.inter_arrival_ns()
    assert np.allclose(gaps, 100 * MS)


def test_selfish_threshold_hides_small_events():
    env = Environment()
    node = Node(env, 0, KernelConfig.lightweight(),
                injected=[PeriodicNoise(1 * MS, 500, name="tiny")])
    res = SelfishBenchmark(window_ns=100 * MS, threshold_ns=1 * US).run(node)
    assert res.count == 0
    res2 = SelfishBenchmark(window_ns=100 * MS, threshold_ns=0).run(node)
    assert res2.count == 100


def test_selfish_quiet_is_silent():
    res = SelfishBenchmark(window_ns=SEC).run(_quiet_node())
    assert res.count == 0
    assert res.detour_fraction == 0.0


# -- PSNAP ------------------------------------------------------------------------------

def test_psnap_census_across_machine():
    m = Machine(MachineConfig(n_nodes=8, kernel="tuned-linux", seed=4))
    res = PSNAPBenchmark(n_samples=256).run(m)
    assert res.n_nodes == 8
    fracs = res.node_noise_fractions()
    assert all(0 < f < 0.05 for f in fracs.values())
    worst = res.noisiest_nodes(3)
    assert len(worst) == 3
    assert worst[0][1] >= worst[1][1] >= worst[2][1]
    assert res.imbalance_ratio() >= 1.0


def test_psnap_quiet_machine_uniform():
    m = Machine(MachineConfig(n_nodes=4, kernel="lightweight"))
    res = PSNAPBenchmark(n_samples=64).run(m)
    assert res.machine_stats().maximum == 0.0


# -- collective benchmark -------------------------------------------------------------------

def test_collective_bench_quiet_latency_reasonable():
    m = Machine(MachineConfig(n_nodes=8, kernel="lightweight"))
    res = CollectiveBenchmark("allreduce", repetitions=10).run(m)
    assert res.n_nodes == 8
    assert len(res.times_ns) == 10
    L = m.mpi.network.params.L
    # 3 rounds of recursive doubling, each at least one wire latency.
    assert res.mean_ns >= 3 * L
    # Quiet machine: every repetition identical (deterministic).
    assert res.times_ns.std() == 0


def test_collective_bench_noise_adds_variance_and_latency():
    def mean_time(injection):
        m = Machine(MachineConfig(n_nodes=16, kernel="lightweight",
                                  injection=injection, seed=5))
        return CollectiveBenchmark("allreduce", repetitions=30).run(m)

    quiet = mean_time(None)
    noisy = mean_time(InjectionPlan("2.5pct@1000Hz", seed=5))
    assert noisy.mean_ns > quiet.mean_ns
    assert noisy.times_ns.std() > 0


def test_collective_bench_all_operations_run():
    for op in ("barrier", "bcast", "allgather", "alltoall"):
        m = Machine(MachineConfig(n_nodes=5, kernel="lightweight"))
        res = CollectiveBenchmark(op, repetitions=3).run(m)
        assert (res.times_ns > 0).all(), op


def test_collective_bench_validation():
    with pytest.raises(ConfigError):
        CollectiveBenchmark("reduce-scatter")
    with pytest.raises(ConfigError):
        CollectiveBenchmark(repetitions=0)


# -- ping-pong -------------------------------------------------------------------

def test_pingpong_quiet_machine_flat():
    from repro.microbench import PingPongBenchmark
    m = Machine(MachineConfig(n_nodes=2, kernel="lightweight"))
    res = PingPongBenchmark(repetitions=50).run(m)
    assert res.rtt_ns.std() == 0
    assert res.tail_ratio == pytest.approx(1.0)
    assert len(res.struck_round_trips()) == 0


def test_pingpong_noise_shows_in_the_tail():
    from repro.microbench import PingPongBenchmark
    m = Machine(MachineConfig(
        n_nodes=2, kernel="lightweight",
        injection=InjectionPlan("2.5pct@100Hz", seed=4), seed=4))
    # Long enough that >1% of round trips are struck (the 250 us events
    # at 100 Hz on two endpoints blanket a few RTTs each).
    res = PingPongBenchmark(repetitions=4000, gap_ns=100_000).run(m)
    assert res.tail_ratio > 1.5
    struck = res.struck_round_trips()
    assert len(struck) > 40
    # Struck RTTs carry roughly the injected event size (250 us).
    assert res.rtt_ns.max() >= res.median_ns + 150 * US


def test_pingpong_validation():
    from repro.microbench import PingPongBenchmark
    with pytest.raises(ConfigError):
        PingPongBenchmark(repetitions=0)
    m = Machine(MachineConfig(n_nodes=2))
    with pytest.raises(ConfigError):
        PingPongBenchmark().run(m, src=1, dst=1)


def test_pingpong_median_reflects_network_preset():
    from repro.microbench import PingPongBenchmark
    fast = Machine(MachineConfig(n_nodes=2, network="seastar"))
    slow = Machine(MachineConfig(n_nodes=2, network="gige"))
    r_fast = PingPongBenchmark(repetitions=20).run(fast)
    r_slow = PingPongBenchmark(repetitions=20).run(slow)
    assert r_slow.median_ns > 3 * r_fast.median_ns
