"""Bulk-rank fast path vs per-rank generator: byte-identity contract.

Every case runs the same benchmark twice — vectorized
(:func:`repro.mpi.collectives.bulk.run_bulk`) and through the DES
generator path — and asserts the full per-rank repetition timelines,
derived times, and timeline checksums are byte-identical.  Cases where
the engine legitimately raises :class:`BulkDivergence` (coincidental
consequential arrival ties) instead assert the ``run_auto`` fallback
returns the generator's exact result.
"""

from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro import obs
from repro.core import Machine, MachineConfig
from repro.errors import ConfigError
from repro.microbench import CollectiveBenchmark
from repro.mpi.collectives.bulk import run_bulk, unsupported_reason
from repro.noise import InjectionPlan
from repro.sim.bulk import BulkDivergence, timelines_from_finish

SH = "1x4x2@fat-tree"
REPS = 5


def _config(P, pattern=None, alignment="random", shape=None,
            topology="switch", seed=31):
    injection = (InjectionPlan(pattern, alignment=alignment, seed=seed)
                 if pattern else None)
    return MachineConfig(n_nodes=P, kernel="lightweight", network="seastar",
                         topology=topology, shape=shape,
                         injection=injection, seed=seed)


def _bench(op="allreduce", algo=None, reps=REPS):
    return CollectiveBenchmark(op, repetitions=reps, message_size=8,
                               algorithm=algo, gap_ns=500_000)


def _generator_timeline(config, bench):
    finish = [{} for _ in range(bench.repetitions)]
    machine = Machine(config)
    procs = machine.launch(lambda ctx: bench._program(ctx, finish))
    machine.run_to_completion(procs)
    return timelines_from_finish(finish, config.n_nodes)


CASES = {
    "flat-rd-4": dict(P=4),
    "flat-rd-16": dict(P=16),
    "flat-rd-64": dict(P=64),
    "barrier-7": dict(P=7, op="barrier"),
    "bcast-binomial-7": dict(P=7, op="bcast", algo="binomial"),
    "noisy-fine-random": dict(P=16, pattern="2.5pct@1000Hz"),
    "noisy-coarse-staggered": dict(P=16, pattern="2.5pct@100Hz",
                                   alignment="staggered"),
    "noisy-sync-barrier": dict(P=16, op="barrier", pattern="2.5pct@1000Hz",
                               alignment="synchronized"),
    "two-level-16": dict(P=16, algo="two-level", shape=SH),
    "two-level-ring-ragged-18": dict(P=18, algo="two-level-ring", shape=SH),
    "two-level-barrier-18": dict(P=18, op="barrier", algo="two-level",
                                 shape=SH),
    "two-level-noisy": dict(P=16, algo="two-level", shape=SH,
                            pattern="2.5pct@1000Hz"),
    "hier-fabric": dict(P=16, topology="hier:1x4x2@fat-tree"),
    "torus": dict(P=16, topology="torus:4x2x2"),
    "fat-tree-noisy": dict(P=16, topology="fat-tree",
                           pattern="2.5pct@1000Hz"),
}


@pytest.mark.parametrize("name", sorted(CASES))
def test_bulk_matches_generator(name):
    case = dict(CASES[name])
    op = case.pop("op", "allreduce")
    algo = case.pop("algo", None)
    config = _config(**case)
    bench = _bench(op, algo)
    assert unsupported_reason(config, bench) is None

    try:
        res_b, tl_b = run_bulk(config, bench)
    except BulkDivergence:
        # A consequential exact-nanosecond tie the static gates cannot
        # rule out: the auto path must fall back to the generator.
        res_auto = bench.run_auto(config, bulk_min_nodes=1)
        res_gen = bench.run(Machine(config))
        assert np.array_equal(res_auto.times_ns, res_gen.times_ns)
        return

    tl_g = _generator_timeline(config, bench)
    assert np.array_equal(tl_b.starts, tl_g.starts)
    assert np.array_equal(tl_b.ends, tl_g.ends)
    assert tl_b.checksum() == tl_g.checksum()
    res_gen = bench.run(Machine(config))
    assert np.array_equal(res_b.times_ns, res_gen.times_ns)


# -- divergence fallback and tie policy ---------------------------------------
def test_known_tie_divergence_falls_back():
    """32 ranks under 100 Hz noise hits a full arrival tie (equal send
    instants on a release wave): strict mode must raise and run_auto
    must return the generator's exact result."""
    config = _config(32, pattern="2.5pct@100Hz")
    bench = _bench()
    with pytest.raises(BulkDivergence):
        run_bulk(config, bench, tie_break="strict")
    res_auto = bench.run_auto(config, bulk_min_nodes=1)
    res_gen = bench.run(Machine(config))
    assert np.array_equal(res_auto.times_ns, res_gen.times_ns)


def test_deterministic_tie_break_is_reproducible():
    config = _config(32, pattern="2.5pct@100Hz")
    stats_a, stats_b = {}, {}
    _res_a, tl_a = run_bulk(config, _bench(), tie_break="deterministic",
                            stats_out=stats_a)
    _res_b, tl_b = run_bulk(config, _bench(), tie_break="deterministic",
                            stats_out=stats_b)
    assert tl_a.checksum() == tl_b.checksum()
    assert stats_a == stats_b
    assert stats_a["tie_breaks"] > 0


def test_run_auto_modes():
    config = _config(16)
    bench = _bench()
    auto = bench.run_auto(config)          # 16 < bulk_min_nodes: generator
    forced = bench.run_auto(config, mode="bulk")
    gen = bench.run_auto(config, mode="generator")
    assert np.array_equal(auto.times_ns, gen.times_ns)
    assert np.array_equal(forced.times_ns, gen.times_ns)
    with pytest.raises(ConfigError):
        bench.run_auto(_config(16, pattern="2.5pct@100HzPoisson"),
                       mode="bulk")
    with pytest.raises(ConfigError):
        bench.run_auto(config, mode="nonsense")


# -- serial vs worker processes ----------------------------------------------
def _worker_det_checksum(P, pattern):
    from repro.core import ExperimentConfig, run_experiment
    obs.disable()
    obs.configure(det_check=True)
    try:
        cfg = ExperimentConfig(app="bsp", nodes=P, noise_pattern=pattern,
                               seed=7,
                               app_params={"work_ns": 200_000,
                                           "iterations": 4})
        result = run_experiment(cfg)
        return result.meta["det_check"]
    finally:
        obs.disable()


def test_timeline_checksums_serial_vs_workers():
    """The generator timelines (and hence the bulk-equivalence
    contract) are identical whether points run in-process or in
    worker processes."""
    names = ["flat-rd-16", "noisy-fine-random", "two-level-16"]
    serial = {}
    for name in names:
        case = dict(CASES[name])
        op = case.pop("op", "allreduce")
        algo = case.pop("algo", None)
        serial[name] = _generator_timeline(_config(**case),
                                           _bench(op, algo)).checksum()
    with ProcessPoolExecutor(2) as pool:
        pooled = dict(pool.map(_pool_entry, names))
    assert serial == pooled


def _pool_entry(name):
    case = dict(CASES[name])
    op = case.pop("op", "allreduce")
    algo = case.pop("algo", None)
    return name, _generator_timeline(_config(**case),
                                     _bench(op, algo)).checksum()


def test_det_check_serial_vs_workers():
    """obs det_check checksums match between an in-process run and a
    worker-process run of the same noisy configuration."""
    args = [(4, "quiet"), (4, "2.5pct@100Hz")]
    serial = [_worker_det_checksum(*a) for a in args]
    with ProcessPoolExecutor(2) as pool:
        pooled = list(pool.map(_det_entry, args))
    assert serial == pooled
    assert all(isinstance(v, int) and v != 0 for v in serial)


def _det_entry(args):
    return _worker_det_checksum(*args)
