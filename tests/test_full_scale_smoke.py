"""Smoke test for the experiments' "full" scale paths.

Only the cheaper experiments run at full scale here (each benchmark
already exercises its "small" path); this guards the full-scale
parameter branches against rot without multi-minute CI runs.
"""

from repro.harness import run_experiment


def test_e6_full_scale_runs_and_passes():
    report = run_experiment("E6", "full")
    assert report.passed, report.failed_checks()
    # Full scale records more intervals than small.
    assert all(row[1] == 400 for row in report.rows)


def test_e7_full_scale_runs_and_passes():
    report = run_experiment("E7", "full")
    assert report.passed, report.failed_checks()
