"""Tests for MPI point-to-point semantics: matching, requests, ordering."""

import pytest

from repro.core import Machine, MachineConfig
from repro.errors import MPIError
from repro.mpi import ANY_SOURCE, ANY_TAG, wait_all


def _machine(n=2, **kw):
    return Machine(MachineConfig(n_nodes=n, **kw))


def _run(machine, *programs):
    """Launch program i on rank i; returns list of return values."""
    procs = []
    for rank, prog in enumerate(programs):
        ctx = machine.mpi.rank_context(rank)
        procs.append(machine.env.process(prog(ctx), name=f"rank{rank}"))
    machine.run_to_completion(procs)
    return [p.value for p in procs]


def test_send_recv_payload_roundtrip():
    m = _machine()

    def sender(ctx):
        yield from ctx.send(1, size=64, tag=5, payload={"x": 42})

    def receiver(ctx):
        msg = yield from ctx.recv(0, tag=5)
        return (msg.payload, msg.src_rank, msg.tag, msg.size)

    _, got = _run(m, sender, receiver)
    assert got == ({"x": 42}, 0, 5, 64)


def test_recv_blocks_until_message():
    m = _machine()

    def sender(ctx):
        yield from ctx.compute(50_000)
        yield from ctx.send(1, size=0)

    def receiver(ctx):
        msg = yield from ctx.recv(0)
        return ctx.env.now

    _, t = _run(m, sender, receiver)
    assert t > 50_000


def test_unexpected_message_queued_until_recv():
    m = _machine()

    def sender(ctx):
        yield from ctx.send(1, size=0, tag=9)

    def receiver(ctx):
        yield from ctx.compute(100_000)  # message arrives while computing
        msg = yield from ctx.recv(0, tag=9)
        return msg.tag

    _, tag = _run(m, sender, receiver)
    assert tag == 9
    assert m.mpi.router.unexpected_arrivals == 1


def test_wildcard_source_and_tag():
    m = _machine(3)

    def sender(ctx):
        yield from ctx.compute(1000 * (ctx.rank + 1))
        yield from ctx.send(2, size=0, tag=ctx.rank + 10)

    def receiver(ctx):
        a = yield from ctx.recv(ANY_SOURCE, tag=ANY_TAG)
        b = yield from ctx.recv(ANY_SOURCE, tag=ANY_TAG)
        return {a.src_rank, b.src_rank}

    got = _run(m, sender, sender, receiver)
    assert got[2] == {0, 1}


def test_tag_selectivity():
    m = _machine()

    def sender(ctx):
        yield from ctx.send(1, size=0, tag=1, payload="first")
        yield from ctx.send(1, size=0, tag=2, payload="second")

    def receiver(ctx):
        msg2 = yield from ctx.recv(0, tag=2)
        msg1 = yield from ctx.recv(0, tag=1)
        return (msg1.payload, msg2.payload)

    _, got = _run(m, sender, receiver)
    assert got == ("first", "second")


def test_non_overtaking_same_tag():
    m = _machine()

    def sender(ctx):
        for i in range(5):
            yield from ctx.send(1, size=0, tag=0, payload=i)

    def receiver(ctx):
        seen = []
        for _ in range(5):
            msg = yield from ctx.recv(0, tag=0)
            seen.append(msg.payload)
        return seen

    _, seen = _run(m, sender, receiver)
    assert seen == [0, 1, 2, 3, 4]


def test_isend_irecv_with_waitall():
    m = _machine()

    def sender(ctx):
        reqs = []
        for i in range(3):
            req = yield from ctx.isend(1, size=8, tag=i, payload=i * 11)
            reqs.append(req)
        yield from wait_all(reqs)

    def receiver(ctx):
        reqs = [ctx.irecv(0, tag=i) for i in range(3)]
        msgs = yield from wait_all(reqs)
        return [m.payload for m in msgs]

    _, got = _run(m, sender, receiver)
    assert got == [0, 11, 22]


def test_request_double_wait_rejected():
    m = _machine()

    def sender(ctx):
        yield from ctx.send(1, size=0)

    def receiver(ctx):
        req = ctx.irecv(0)
        yield from req.wait()
        try:
            yield from req.wait()
        except MPIError:
            return "caught"
        return "no error"

    _, got = _run(m, sender, receiver)
    assert got == "caught"


def test_request_test_polls_without_blocking():
    m = _machine()

    def sender(ctx):
        yield from ctx.compute(10_000)
        yield from ctx.send(1, size=0)

    def receiver(ctx):
        req = ctx.irecv(0)
        early = req.test()
        yield from ctx.compute(100_000)
        late = req.test()
        yield from req.wait()
        return (early, late)

    _, got = _run(m, sender, receiver)
    assert got == (False, True)


def test_sendrecv_exchanges_simultaneously():
    m = _machine()

    def prog(ctx):
        other = 1 - ctx.rank
        msg = yield from ctx.sendrecv(other, other, size=8,
                                      payload=f"from{ctx.rank}")
        return msg.payload

    got = _run(m, prog, prog)
    assert got == ["from1", "from0"]


def test_send_pays_loggp_overhead():
    m = _machine(2, network="gige")  # o = 5 us
    o = m.mpi.network.params.o

    def sender(ctx):
        t0 = ctx.env.now
        yield from ctx.send(1, size=0)
        return ctx.env.now - t0

    def receiver(ctx):
        yield from ctx.recv(0)

    elapsed, _ = _run(m, sender, receiver)
    assert elapsed >= o


def test_invalid_ranks_and_tags_rejected():
    m = _machine()
    ctx = m.mpi.rank_context(0)
    with pytest.raises(MPIError):
        ctx.irecv(source=5)
    with pytest.raises(MPIError):
        m.mpi.rank_context(9)

    def bad_send(ctx):
        yield from ctx.send(1, size=0, tag=-2)

    m2 = _machine()
    m2.env.process(bad_send(m2.mpi.rank_context(0)))
    with pytest.raises(MPIError):
        m2.run()


def test_deadlock_detected_for_unmatched_recv():
    from repro.errors import DeadlockError
    m = _machine()

    def receiver(ctx):
        yield from ctx.recv(0)  # nobody ever sends

    m.env.process(receiver(m.mpi.rank_context(1)))
    with pytest.raises(DeadlockError):
        m.run()


def test_communicator_subsets():
    m = _machine(4)
    comm = m.mpi.create_comm([2, 3])
    assert comm.size == 2
    assert comm.node(0) == 2

    def prog(ctx):
        if ctx.rank == 0:
            yield from ctx.send(1, size=0, payload="sub")
            return None
        msg = yield from ctx.recv(0)
        return msg.payload

    procs = m.launch(prog, comm=comm)
    m.run_to_completion(procs)
    assert procs[1].value == "sub"


def test_communicator_validation():
    m = _machine(4)
    with pytest.raises(MPIError):
        m.mpi.create_comm([0, 0])
    with pytest.raises(MPIError):
        m.mpi.create_comm([9])
    with pytest.raises(MPIError):
        m.mpi.create_comm([])


def test_messages_between_comms_do_not_cross():
    m = _machine(2)
    sub = m.mpi.create_comm([0, 1])

    def sender(ctx_world, ctx_sub):
        yield from ctx_world.send(1, size=0, tag=0, payload="world")
        yield from ctx_sub.send(1, size=0, tag=0, payload="sub")

    def receiver(ctx_world, ctx_sub):
        sub_msg = yield from ctx_sub.recv(0, tag=0)
        world_msg = yield from ctx_world.recv(0, tag=0)
        return (sub_msg.payload, world_msg.payload)

    w0, s0 = m.mpi.rank_context(0), m.mpi.rank_context(0, sub)
    w1, s1 = m.mpi.rank_context(1), m.mpi.rank_context(1, sub)
    m.env.process(sender(w0, s0))
    p = m.env.process(receiver(w1, s1))
    m.run_to_completion([p])
    assert p.value == ("sub", "world")
