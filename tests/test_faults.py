"""Tests for the fault-injection layer: plans, protocol, integration."""

import pytest

from repro.core import ExperimentConfig, Machine, MachineConfig, run_experiment
from repro.errors import ConfigError, FaultError
from repro.faults import FaultPlan, LinkDegradation, parse_faults
from repro.sim.rng import derive_fraction, node_seed


# -- plan semantics ------------------------------------------------------------

def test_empty_plan_injects_nothing():
    plan = FaultPlan()
    assert not plan.injects_faults
    assert not plan.needs_protocol
    assert plan.slow_nodes_for(64) == {}
    assert not plan.drop_message(0, 1, "data/0/0")


def test_plan_validation():
    with pytest.raises(ConfigError):
        FaultPlan(drop_rate=1.5)
    with pytest.raises(ConfigError):
        FaultPlan(drop_rate=1.0)
    with pytest.raises(ConfigError):
        FaultPlan(slow_factor=0.0)
    with pytest.raises(ConfigError):
        FaultPlan(backoff=0.5)
    with pytest.raises(ConfigError):
        LinkDegradation(10, 10, 2.0)
    with pytest.raises(ConfigError):
        LinkDegradation(0, 10, 0.5)


def test_drop_decisions_are_deterministic_and_monotone():
    lo = FaultPlan(drop_rate=0.02, seed=9)
    hi = FaultPlan(drop_rate=0.10, seed=9)
    labels = [(s, d, f"data/{p}/0") for s in range(4) for d in range(4)
              for p in range(50)]
    lo_drops = {x for x in labels if lo.drop_message(*x)}
    hi_drops = {x for x in labels if hi.drop_message(*x)}
    assert lo_drops == {x for x in labels if lo.drop_message(*x)}  # stable
    assert lo_drops <= hi_drops  # superset property -> monotone sweeps
    assert len(hi_drops) > len(lo_drops)


def test_retransmission_gets_fresh_coin_flip():
    plan = FaultPlan(drop_rate=0.5, seed=0)
    flips = {plan.drop_message(0, 1, f"data/7/{attempt}")
             for attempt in range(32)}
    assert flips == {True, False}


def test_degradation_window_and_channel_filter():
    win = LinkDegradation(100, 200, 4.0, src=1)
    assert win.applies(1, 0, 150)
    assert not win.applies(2, 0, 150)   # wrong src
    assert not win.applies(1, 0, 200)   # half-open end
    plan = FaultPlan(degradations=(win, LinkDegradation(0, 1000, 2.0)))
    assert plan.latency_factor(1, 0, 150) == 8.0  # windows compose
    assert plan.latency_factor(2, 0, 150) == 2.0
    assert plan.injects_faults and not plan.needs_protocol


def test_node_crash_is_permanent():
    plan = FaultPlan(crashes=((3, 1000),))
    assert not plan.node_crashed(3, 999)
    assert plan.node_crashed(3, 1000)
    assert plan.node_crashed(3, 10 ** 9)
    assert not plan.node_crashed(2, 10 ** 9)
    assert plan.needs_protocol


def test_slow_nodes_stable_across_machine_sizes():
    plan = FaultPlan(slow_node_rate=0.3, slow_factor=0.8, seed=5)
    small = plan.slow_nodes_for(16)
    large = plan.slow_nodes_for(64)
    assert small == {i: f for i, f in large.items() if i < 16}
    assert small  # 0.3 over 16 nodes: essentially certain
    # Derivation goes through the shared node-seed helper.
    assert all(derive_fraction(node_seed(5, i), "fault/slow") < 0.3
               for i in small)


def test_retry_timeout_backoff():
    plan = FaultPlan(ack_timeout_ns=1000, backoff=2.0)
    assert [plan.retry_timeout_ns(a) for a in range(4)] == \
        [1000, 2000, 4000, 8000]


# -- spec parsing --------------------------------------------------------------

def test_parse_faults_full_grammar():
    plan = parse_faults(
        "drop=0.01,dup=0.002,timeout=1ms,retries=6,backoff=3,"
        "slow=0.1x0.8,crash=3@50ms,crash=7", seed=11)
    assert plan.drop_rate == 0.01
    assert plan.duplicate_rate == 0.002
    assert plan.ack_timeout_ns == 1_000_000
    assert plan.max_retries == 6
    assert plan.backoff == 3.0
    assert plan.slow_node_rate == 0.1 and plan.slow_factor == 0.8
    assert plan.crashes == ((3, 50_000_000), (7, 0))
    assert plan.seed == 11


def test_parse_faults_disabled_aliases():
    for spec in ("", "none", "off", "  NONE "):
        assert parse_faults(spec) is None


def test_parse_faults_rejects_junk():
    with pytest.raises(ConfigError):
        parse_faults("drop")
    with pytest.raises(ConfigError):
        parse_faults("warp=9")
    with pytest.raises(ConfigError):
        parse_faults("drop=lots")


# -- zero-fault byte-identity (the load-bearing property) ----------------------

def _strip_wallclock(result):
    return (result.makespan_ns, result.iteration_durations_ns.tolist(),
            result.events_processed, result.meta)


@pytest.mark.parametrize("app", ["bsp", "stencil"])
@pytest.mark.parametrize("seed", [0, 42])
def test_zero_fault_runs_are_byte_identical(app, seed):
    base = ExperimentConfig(app=app, nodes=8, noise_pattern="2.5pct@10Hz",
                            seed=seed,
                            app_params={"work_ns": 200_000, "iterations": 6})
    plain = run_experiment(base)
    for faults in (FaultPlan(), "drop=0", "none"):
        twin = run_experiment(
            ExperimentConfig(app=app, nodes=8, noise_pattern="2.5pct@10Hz",
                             seed=seed, faults=faults,
                             app_params={"work_ns": 200_000, "iterations": 6}))
        assert _strip_wallclock(twin) == _strip_wallclock(plain)
        assert "faults" not in twin.meta


def test_faulty_runs_are_deterministic():
    cfg = ExperimentConfig(app="bsp", nodes=8, seed=7,
                           faults="drop=0.02,dup=0.01,timeout=300us",
                           app_params={"work_ns": 200_000, "iterations": 8})
    a, b = run_experiment(cfg), run_experiment(cfg)
    assert _strip_wallclock(a) == _strip_wallclock(b)
    assert a.meta["faults"]["total_retries"] > 0


# -- integrated fault behavior -------------------------------------------------

def _run(faults, seed=3, nodes=8):
    return run_experiment(ExperimentConfig(
        app="bsp", nodes=nodes, seed=seed, faults=faults,
        app_params={"work_ns": 200_000, "iterations": 10}))


def test_drops_cost_time_and_count_retries():
    clean = _run(None)
    lossy = _run(FaultPlan(drop_rate=0.03, seed=3, ack_timeout_ns=200_000))
    assert lossy.makespan_ns > clean.makespan_ns
    fs = lossy.meta["faults"]
    assert fs["messages_dropped"] > 0
    assert fs["total_retries"] > 0
    assert sum(fs["retries"].values()) == fs["total_retries"]
    assert sum(fs["drops_by_node"].values()) == fs["messages_dropped"]


def test_drop_rate_sweep_is_monotone():
    spans = [_run(FaultPlan(drop_rate=r, seed=3,
                            ack_timeout_ns=200_000)).makespan_ns
             for r in (0.0, 0.02, 0.06)]
    assert spans == sorted(spans)


def test_duplicates_are_suppressed_exactly_once():
    clean = _run(None)
    dupes = _run(FaultPlan(duplicate_rate=0.2, seed=3))
    fs = dupes.meta["faults"]
    assert fs["duplicates_injected"] > 0
    assert fs["total_duplicates_suppressed"] > 0
    # Suppression means the app sees each message exactly once: the
    # iteration structure is intact (timing differs — acks cost CPU).
    assert dupes.iteration_durations_ns.shape == \
        clean.iteration_durations_ns.shape


def test_link_degradation_slows_the_run():
    clean = _run(None)
    degraded = _run(FaultPlan(
        degradations=(LinkDegradation(0, 10 ** 12, 8.0),)))
    assert degraded.makespan_ns > clean.makespan_ns
    # No losses -> the plain connectionless path, no protocol counters.
    assert "total_retries" not in degraded.meta["faults"]


def test_slow_nodes_stretch_the_makespan():
    clean = _run(None)
    sick = _run(FaultPlan(slow_node_rate=0.5, slow_factor=0.5, seed=3))
    assert sick.makespan_ns > clean.makespan_ns


def test_crashed_node_escalates_to_fault_error():
    with pytest.raises(FaultError):
        _run(FaultPlan(crashes=((0, 0),), ack_timeout_ns=50_000,
                       max_retries=2))


def test_machine_fault_stats_none_when_reliable():
    machine = Machine(MachineConfig(n_nodes=2))
    assert machine.fault_stats() is None
    machine = Machine(MachineConfig(n_nodes=2, faults=FaultPlan()))
    assert machine.fault_stats() is None
