"""Unit tests for generator processes, interrupts, and conditions."""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.sim import Environment, Interrupt


def test_process_runs_and_returns_value():
    env = Environment()

    def proc(env):
        yield env.timeout(10)
        yield env.timeout(5)
        return env.now

    p = env.process(proc(env))
    assert env.run(until=p) == 15


def test_process_is_alive_transitions():
    env = Environment()

    def proc(env):
        yield env.timeout(10)

    p = env.process(proc(env))
    assert p.is_alive
    env.run()
    assert not p.is_alive


def test_process_waiting_on_process():
    env = Environment()
    log = []

    def child(env):
        yield env.timeout(7)
        log.append("child")
        return 99

    def parent(env):
        value = yield env.process(child(env))
        log.append("parent")
        return value

    p = env.process(parent(env))
    assert env.run(until=p) == 99
    assert log == ["child", "parent"]


def test_two_processes_interleave_deterministically():
    env = Environment()
    log = []

    def ticker(env, name, period):
        for _ in range(3):
            yield env.timeout(period)
            log.append((env.now, name))

    env.process(ticker(env, "a", 10))
    env.process(ticker(env, "b", 15))
    env.run()
    # At t=30 both fire; "b"'s timeout was scheduled first (at t=15, vs
    # "a"'s at t=20), so FIFO-by-scheduling-order puts "b" first.
    assert log == [(10, "a"), (15, "b"), (20, "a"), (30, "b"), (30, "a"), (45, "b")]


def test_process_yielding_non_event_raises():
    env = Environment()

    def bad(env):
        yield 42

    env.process(bad(env))
    with pytest.raises(SimulationError):
        env.run()


def test_process_yielding_foreign_event_raises():
    env1 = Environment()
    env2 = Environment()

    def bad(env):
        yield env2.timeout(1)

    env1.process(bad(env1))
    with pytest.raises(SimulationError):
        env1.run()


def test_process_requires_generator():
    env = Environment()
    with pytest.raises(TypeError):
        env.process(lambda: None)  # type: ignore[arg-type]


def test_crashing_process_propagates_when_unwatched():
    env = Environment()

    def boom(env):
        yield env.timeout(1)
        raise RuntimeError("kaboom")

    env.process(boom(env))
    with pytest.raises(RuntimeError, match="kaboom"):
        env.run()


def test_crashing_process_fails_watchers():
    env = Environment()

    def boom(env):
        yield env.timeout(1)
        raise RuntimeError("kaboom")

    def watcher(env):
        try:
            yield env.process(boom(env))
        except RuntimeError as exc:
            return f"caught {exc}"

    p = env.process(watcher(env))
    assert env.run(until=p) == "caught kaboom"


def test_interrupt_wakes_waiting_process():
    env = Environment()

    def sleeper(env):
        try:
            yield env.timeout(1_000_000)
            return "slept"
        except Interrupt as i:
            return f"interrupted:{i.cause}"

    p = env.process(sleeper(env))

    def interrupter(env):
        yield env.timeout(10)
        p.interrupt("wakeup")

    env.process(interrupter(env))
    assert env.run(until=p) == "interrupted:wakeup"
    assert env.now == 10


def test_interrupt_terminated_process_rejected():
    env = Environment()

    def quick(env):
        yield env.timeout(1)

    p = env.process(quick(env))
    env.run()
    with pytest.raises(SimulationError):
        p.interrupt()


def test_already_processed_event_resumes_inline():
    env = Environment()
    done = env.event()
    done.succeed("early")

    def late(env):
        yield env.timeout(100)
        value = yield done  # already processed; must not block
        return value

    p = env.process(late(env))
    assert env.run(until=p) == "early"
    assert env.now == 100


def test_deadlock_detection_on_drain():
    env = Environment()

    def stuck(env):
        yield env.event()  # never fires

    env.process(stuck(env))
    with pytest.raises(DeadlockError):
        env.run()


def test_all_of_waits_for_every_event():
    env = Environment()

    def proc(env):
        values = yield env.all_of([env.timeout(5, "a"), env.timeout(20, "b"),
                                   env.timeout(10, "c")])
        return (env.now, values)

    p = env.process(proc(env))
    assert env.run(until=p) == (20, ["a", "b", "c"])


def test_all_of_empty_fires_immediately():
    env = Environment()

    def proc(env):
        values = yield env.all_of([])
        return (env.now, values)

    p = env.process(proc(env))
    assert env.run(until=p) == (0, [])


def test_any_of_fires_on_first():
    env = Environment()

    def proc(env):
        value = yield env.any_of([env.timeout(50, "slow"), env.timeout(5, "fast")])
        return (env.now, value)

    p = env.process(proc(env))
    assert env.run(until=p) == (5, "fast")


def test_any_of_empty_rejected():
    env = Environment()
    with pytest.raises(ValueError):
        env.any_of([])


def test_process_name_defaults_and_override():
    env = Environment()

    def myproc(env):
        yield env.timeout(1)

    assert env.process(myproc(env)).name == "myproc"
    assert env.process(myproc(env), name="custom").name == "custom"
    env.run()
