"""Tests for the observer: tracer, profiles, attribution, ghost hunt."""

import pytest

from repro.core import Machine, MachineConfig
from repro.errors import ConfigError, TraceError
from repro.kernel import DaemonSpec, KernelConfig
from repro.ktau import (
    EventKind,
    KtauTracer,
    OverheadModel,
    attribute_intervals,
    build_app_profile,
    build_kernel_profile,
    candidate_frequencies,
    classify_source,
    explain_slow_intervals,
    hunt,
    summarize_attribution,
)
from repro.noise import InjectionPlan, PeriodicNoise
from repro.sim import MS, SEC, US


def _observed_machine(n=2, kernel="commodity-linux", injection=None,
                      level="trace", overhead=None, seed=3):
    m = Machine(MachineConfig(n_nodes=n, kernel=kernel, injection=injection,
                              seed=seed))
    tracer = KtauTracer(m, level=level, overhead=overhead)
    return m, tracer


def _run_iterations(m, tracer, n_iter=10, work=2 * MS, allreduce=True):
    def prog(ctx):
        for i in range(n_iter):
            with tracer.app_interval(ctx.node_id, "iteration", i=i):
                yield from ctx.compute(work)
                if allreduce and ctx.size > 1:
                    yield from ctx.allreduce(size=8)

    procs = m.launch(prog)
    m.run_to_completion(procs)


# -- records -------------------------------------------------------------------

def test_classify_sources():
    assert classify_source("timer-irq") == EventKind.INTERRUPT
    assert classify_source("nic-rx") == EventKind.SOFTIRQ
    assert classify_source("kswapd") == EventKind.DAEMON
    assert classify_source("syscall") == EventKind.SYSCALL
    assert classify_source("2.5pct@100hz") == EventKind.INJECTED
    assert classify_source("ktau-overhead") == EventKind.OBSERVER
    assert classify_source("mystery") == EventKind.OTHER


# -- tracer wiring -----------------------------------------------------------------

def test_tracer_rejects_double_attach():
    m, tracer = _observed_machine()
    with pytest.raises(ConfigError):
        KtauTracer(m)


def test_tracer_rejects_bad_level():
    m = Machine(MachineConfig(n_nodes=1))
    with pytest.raises(ConfigError):
        KtauTracer(m, level="debug")


def test_app_intervals_recorded_with_meta():
    m, tracer = _observed_machine(n=2)
    _run_iterations(m, tracer, n_iter=4)
    recs = tracer.app_intervals(0, "iteration")
    assert len(recs) == 4
    assert [r.meta["i"] for r in recs] == [0, 1, 2, 3]
    assert all(r.end > r.start for r in recs)


def test_profile_level_blocks_trace_queries():
    m, tracer = _observed_machine(level="profile")
    _run_iterations(m, tracer, n_iter=2)
    with pytest.raises(TraceError):
        tracer.app_intervals(0)
    with pytest.raises(TraceError):
        tracer.kernel_events_between(0, 0, SEC)
    # Aggregates still available.
    assert isinstance(tracer.aggregate_counters(0), dict)


def test_kernel_events_merge_background_and_transient():
    m, tracer = _observed_machine(n=2, kernel="commodity-linux")
    _run_iterations(m, tracer, n_iter=3)
    events = tracer.kernel_events_between(0, 0, m.env.now)
    sources = {e.source for e in events}
    assert "timer-irq" in sources      # background
    assert "nic-rx" in sources         # transient (allreduce traffic)
    starts = [e.start for e in events]
    assert starts == sorted(starts)


def test_stolen_breakdown_includes_injected():
    m, tracer = _observed_machine(
        n=2, kernel="lightweight",
        injection=InjectionPlan("2.5pct@100Hz", alignment="synchronized"))
    _run_iterations(m, tracer, n_iter=40, allreduce=False)
    bd = tracer.stolen_breakdown(0, 0, m.env.now)
    assert bd.get("2.5pct@100hz", 0) > 0
    # 2.5% of the elapsed window, within boundary-rounding slack.
    assert bd["2.5pct@100hz"] / m.env.now == pytest.approx(0.025, rel=0.2)


def test_unknown_node_rejected():
    m, tracer = _observed_machine()
    with pytest.raises(TraceError):
        tracer.stolen_breakdown(99, 0, 100)


# -- overhead --------------------------------------------------------------------------

def test_overhead_model_validation():
    with pytest.raises(ConfigError):
        OverheadModel(per_kernel_event_ns=-1)
    with pytest.raises(ConfigError):
        OverheadModel(flush_every=10)  # missing flush cost
    with pytest.raises(ConfigError):
        OverheadModel.preset("verbose")


def test_observer_overhead_slows_the_machine():
    def timed(overhead):
        m, tracer = _observed_machine(n=2, kernel="commodity-linux",
                                      overhead=overhead)
        _run_iterations(m, tracer, n_iter=10)
        return m.env.now

    free = timed(None)
    trace = timed("trace")
    assert trace > free
    # ...but only slightly (< 2%): observation must not dominate.
    assert (trace - free) / free < 0.02


def test_overhead_charged_is_tracked():
    m, tracer = _observed_machine(n=1, kernel="lightweight",
                                  overhead=OverheadModel(per_app_event_ns=100))

    def prog(ctx):
        for i in range(5):
            with tracer.app_interval(ctx.node_id, "it"):
                yield from ctx.compute(1000)

    procs = m.launch(prog)
    m.run_to_completion(procs)
    # 5 intervals x 2 markers x 100 ns.
    assert tracer.overhead_charged_ns[0] == 1000


# -- profiles -------------------------------------------------------------------------------

def test_kernel_profile_entries_and_utilization():
    m, tracer = _observed_machine(
        n=1, kernel="lightweight",
        injection=InjectionPlan("2.5pct@100Hz", alignment="synchronized"))
    _run_iterations(m, tracer, n_iter=40, allreduce=False)
    prof = build_kernel_profile(tracer, 0, 0, m.env.now)
    entry = prof.entry("2.5pct@100hz")
    assert entry.kind == EventKind.INJECTED
    assert entry.count > 0
    assert entry.max_ns == 250 * US
    assert prof.utilization == pytest.approx(0.025, rel=0.2)
    with pytest.raises(TraceError):
        prof.entry("nonexistent")


def test_kernel_profile_by_kind_ordering():
    m, tracer = _observed_machine(n=2, kernel="commodity-linux")
    _run_iterations(m, tracer)
    prof = build_kernel_profile(tracer, 0, 0, m.env.now)
    kinds = list(prof.by_kind().keys())
    assert kinds == [k for k in EventKind.ORDER if k in kinds]
    assert EventKind.INTERRUPT in kinds


def test_empty_profile_window_rejected():
    m, tracer = _observed_machine()
    _run_iterations(m, tracer, n_iter=1)
    with pytest.raises(TraceError):
        build_kernel_profile(tracer, 0, 100, 100)


def test_app_profile_aggregates():
    m, tracer = _observed_machine(n=2, kernel="commodity-linux")
    _run_iterations(m, tracer, n_iter=6)
    profs = build_app_profile(tracer, 0)
    prof = profs["iteration"]
    assert prof.count == 6
    assert prof.min_wall_ns <= prof.mean_wall_ns <= prof.max_wall_ns
    assert 0 <= prof.noise_fraction < 0.5


# -- attribution ----------------------------------------------------------------------------

def test_attribution_accounts_for_injected_noise():
    m, tracer = _observed_machine(
        n=1, kernel="lightweight",
        injection=InjectionPlan("2.5pct@10Hz", alignment="synchronized"))
    _run_iterations(m, tracer, n_iter=40, work=50 * MS, allreduce=False)
    atts = attribute_intervals(tracer, 0, "iteration")
    assert len(atts) == 40
    summary = summarize_attribution(atts)
    assert summary.noise_fraction == pytest.approx(0.025, rel=0.15)
    # Per-interval accounting closes: duration = app + stolen.
    for att in atts:
        assert att.app_ns + sum(att.stolen_by_source.values()) == att.duration_ns


def test_attribution_separates_syscalls_from_noise():
    m, tracer = _observed_machine(n=1, kernel="lightweight")

    def prog(ctx):
        with tracer.app_interval(ctx.node_id, "it"):
            yield from ctx.compute(10_000)
            yield from ctx.node.syscall()

    procs = m.launch(prog)
    m.run_to_completion(procs)
    att = attribute_intervals(tracer, 0)[0]
    assert att.syscall_ns == 500  # lightweight kernel syscall cost
    assert att.noise_ns == 0


def test_explain_slow_intervals_names_the_thief():
    # One big daemon event every 40 ms; 2 ms iterations: some iterations
    # get hit and stretch far beyond the median.
    kernel = KernelConfig(
        name="daemon-heavy", hz=0, tick_cost_ns=0, tick_heavy_cost_ns=0,
        tick_heavy_probability=0.0,
        daemons=(DaemonSpec("big-daemon", 40 * MS, 4 * MS),))
    m = Machine(MachineConfig(n_nodes=1, kernel=kernel, seed=11))
    tracer = KtauTracer(m)
    _run_iterations(m, tracer, n_iter=50, work=2 * MS, allreduce=False)
    atts = attribute_intervals(tracer, 0, "iteration")
    slow = explain_slow_intervals(atts, threshold=1.5)
    assert slow, "expected some daemon-struck iterations"
    assert all(s.thief == "big-daemon" for s in slow)
    assert slow[0].slowdown_vs_median >= 1.5


def test_summarize_empty_attribution_rejected():
    with pytest.raises(TraceError):
        summarize_attribution([])


# -- ghost hunting --------------------------------------------------------------------------------

def test_candidate_frequencies_from_kernel_and_sources():
    cands = candidate_frequencies(KernelConfig.commodity_linux(),
                                  [PeriodicNoise(10 * MS, 250 * US,
                                                 name="inj")])
    assert cands["timer-irq"] == 1000.0
    assert cands["kswapd"] == pytest.approx(1.0)
    assert cands["inj"] == pytest.approx(100.0)


def test_hunt_identifies_injected_periodicity():
    # Build an FTQ-like series: per-quantum stolen time of a 50 Hz source.
    src = PeriodicNoise.from_utilization(0.05, 50)
    quantum = 1 * MS
    series = [src.stolen_between(i * quantum, (i + 1) * quantum)
              for i in range(4000)]
    report = hunt(series, quantum, {"injected-50hz": 50.0, "timer": 1000.0})
    assert "injected-50hz" in report.identified_sources


def test_hunt_reports_unexplained_ghosts():
    src = PeriodicNoise.from_utilization(0.05, 77)  # nothing matches 77 Hz
    quantum = 1 * MS
    series = [src.stolen_between(i * quantum, (i + 1) * quantum)
              for i in range(4000)]
    report = hunt(series, quantum, {"timer": 1000.0}, tolerance=0.05)
    assert report.unexplained, "the 77 Hz line should be unexplained"
