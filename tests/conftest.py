"""Shared pytest plumbing for the repro test suite."""

import pytest

from repro import obs


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite tests/golden/*.txt from the current code instead "
             "of comparing against them")


@pytest.fixture(autouse=True)
def _zero_telemetry():
    """Every test starts and ends with telemetry off.

    The :mod:`repro.obs` switchboard is process-global; a test that
    configures it must not leak metrics or an active tracer into its
    neighbours.
    """
    obs.disable()
    yield
    obs.disable()
