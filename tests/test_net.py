"""Tests for the network substrate: LogGP, topologies, NIC, transport."""

import networkx as nx
import pytest

from repro.errors import ConfigError
from repro.kernel import KernelConfig, NICCostModel, Node
from repro.net import (
    GraphTopology,
    LogGPParams,
    Message,
    Network,
    SwitchTopology,
    TorusTopology,
)
from repro.sim import Environment


# -- LogGP ---------------------------------------------------------------------

def test_loggp_wire_time():
    p = LogGPParams(L=5000, o=1000, g=300, G=2.0)
    assert p.wire_time(0) == 5000
    assert p.wire_time(100) == 5200
    assert p.wire_time(100, extra_latency=50) == 5250


def test_loggp_validation():
    with pytest.raises(ConfigError):
        LogGPParams(L=-1)
    with pytest.raises(ValueError):
        LogGPParams().wire_time(-1)


def test_loggp_presets():
    assert LogGPParams.preset("seastar").L < LogGPParams.preset("gige").L
    with pytest.raises(ConfigError):
        LogGPParams.preset("carrier-pigeon")


# -- topologies ------------------------------------------------------------------

def test_switch_topology_hops():
    t = SwitchTopology(8)
    assert t.hops(0, 0) == 0
    assert t.hops(0, 7) == 1
    assert t.extra_latency(0, 7) == 0  # single hop: no extra
    assert t.diameter_hops == 1


def test_switch_bounds_checked():
    t = SwitchTopology(4)
    with pytest.raises(ConfigError):
        t.hops(0, 4)


def test_torus_coordinates_roundtrip():
    t = TorusTopology((2, 3, 4))
    assert t.n_nodes == 24
    assert t.coordinates(0) == (0, 0, 0)
    assert t.coordinates(23) == (1, 2, 3)


def test_torus_hops_wraparound():
    t = TorusTopology((4, 4))
    # (0,0) -> (3,3): wraps both dims: 1 + 1.
    assert t.hops(0, 15) == 2
    # (0,0) -> (2,2): 2 + 2 either way.
    assert t.hops(0, 10) == 4
    assert t.diameter_hops == 4


def test_torus_extra_latency_scales_with_hops():
    t = TorusTopology((4, 4), hop_latency_ns=100)
    assert t.extra_latency(0, 1) == 0      # 1 hop
    assert t.extra_latency(0, 10) == 300   # 4 hops


def test_torus_invalid_dims():
    with pytest.raises(ConfigError):
        TorusTopology(())
    with pytest.raises(ConfigError):
        TorusTopology((4, 0))


def test_graph_topology_path_graph():
    g = nx.path_graph(5)
    t = GraphTopology(g)
    assert t.hops(0, 4) == 4
    assert t.hops(2, 2) == 0


def test_graph_topology_validation():
    g = nx.Graph()
    g.add_nodes_from([0, 1, 3])  # gap in labels
    with pytest.raises(ConfigError):
        GraphTopology(g)
    g2 = nx.Graph()
    g2.add_nodes_from([0, 1])
    with pytest.raises(ConfigError):
        GraphTopology(g2)  # disconnected


def test_fat_tree_like_hop_structure():
    t = GraphTopology.fat_tree_like(16, radix=4)
    assert t.hops(0, 1) == 2   # same leaf switch
    assert t.hops(0, 15) == 4  # across the core


# -- message ----------------------------------------------------------------------

def test_message_seq_monotone():
    a = Message(0, 1, 0, 10)
    b = Message(0, 1, 0, 10)
    assert b.seq > a.seq


def test_message_size_validation():
    with pytest.raises(ValueError):
        Message(0, 1, 0, -1)


# -- network transport ----------------------------------------------------------------

def _machine(n, kernel=None, params=None):
    env = Environment()
    kernel = kernel or KernelConfig.lightweight()
    nodes = [Node(env, i, kernel) for i in range(n)]
    net = Network(env, nodes, params=params or LogGPParams(L=5000, o=1000,
                                                           g=0, G=1.0))
    return env, nodes, net


def test_network_delivers_message_with_wire_delay():
    env, nodes, net = _machine(2)
    delivered = []
    net.on_deliver(lambda m: delivered.append((env.now, m)))
    net.inject(Message(src=0, dst=1, tag=7, size=100))
    env.run()
    assert len(delivered) == 1
    when, msg = delivered[0]
    assert when == 5000 + 100  # L + G*size (offloaded NIC: no rx cost)
    assert msg.delivered_at == when
    assert msg.tag == 7


def test_network_requires_delivery_callback():
    env, nodes, net = _machine(2)
    with pytest.raises(ConfigError):
        net.inject(Message(src=0, dst=1, tag=0, size=0))


def test_network_validates_endpoints():
    env, nodes, net = _machine(2)
    net.on_deliver(lambda m: None)
    with pytest.raises(ConfigError):
        net.inject(Message(src=0, dst=5, tag=0, size=0))
    with pytest.raises(ConfigError):
        net.inject(Message(src=-1, dst=1, tag=0, size=0))


def test_nic_gap_serializes_injections():
    env, nodes, net = _machine(2, params=LogGPParams(L=1000, o=0, g=500, G=0.0))
    arrivals = []
    net.on_deliver(lambda m: arrivals.append(env.now))
    for _ in range(3):
        net.inject(Message(src=0, dst=1, tag=0, size=0))
    env.run()
    # Departures at 0, 500, 1000 -> arrivals 1000, 1500, 2000.
    assert arrivals == [1000, 1500, 2000]


def test_nic_rx_processing_charges_host_cpu():
    kernel = KernelConfig(name="host-nic", hz=0, tick_cost_ns=0,
                          tick_heavy_cost_ns=0, tick_heavy_probability=0.0,
                          nic=NICCostModel(rx_irq_ns=2000, rx_softirq_base_ns=3000,
                                           rx_softirq_per_kb_ns=0,
                                           tx_overhead_ns=0))
    env, nodes, net = _machine(2, kernel=kernel,
                               params=LogGPParams(L=1000, o=0, g=0, G=0.0))
    arrivals = []
    net.on_deliver(lambda m: arrivals.append(env.now))
    net.inject(Message(src=0, dst=1, tag=0, size=0))
    env.run()
    assert arrivals == [1000 + 5000]  # wire + rx irq + softirq
    assert nodes[1].cpu.transient_stolen_ns == 5000


def test_rx_processing_extends_receiver_compute():
    kernel = KernelConfig(name="host-nic", hz=0, tick_cost_ns=0,
                          tick_heavy_cost_ns=0, tick_heavy_probability=0.0,
                          nic=NICCostModel(rx_irq_ns=1000, rx_softirq_base_ns=0,
                                           rx_softirq_per_kb_ns=0,
                                           tx_overhead_ns=0))
    env, nodes, net = _machine(2, kernel=kernel,
                               params=LogGPParams(L=1000, o=0, g=0, G=0.0))
    net.on_deliver(lambda m: None)
    finished = {}

    def worker(env):
        yield from nodes[1].compute(10_000)
        finished["at"] = env.now

    env.process(worker(env))
    net.inject(Message(src=0, dst=1, tag=0, size=0))  # arrives at t=1000
    env.run()
    assert finished["at"] == 11_000  # 10k work + 1k stolen by rx irq


def test_network_counters():
    env, nodes, net = _machine(2)
    net.on_deliver(lambda m: None)
    net.inject(Message(src=0, dst=1, tag=0, size=100))
    net.inject(Message(src=1, dst=0, tag=0, size=50))
    env.run()
    assert net.messages_transferred == 2
    assert net.bytes_transferred == 150
    assert net.nics[0].tx_messages == 1
    assert net.nics[0].rx_messages == 1


def test_topology_size_mismatch_rejected():
    env = Environment()
    nodes = [Node(env, i, KernelConfig.lightweight()) for i in range(4)]
    with pytest.raises(ConfigError):
        Network(env, nodes, topology=SwitchTopology(8))


def test_self_send_is_allowed_and_fast():
    env, nodes, net = _machine(2)
    arrivals = []
    net.on_deliver(lambda m: arrivals.append(env.now))
    net.inject(Message(src=0, dst=0, tag=0, size=0))
    env.run()
    assert arrivals == [5000]  # still pays L in this model
