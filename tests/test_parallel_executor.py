"""Tests for the parallel sweep executor and the on-disk result cache."""

import json
import os
import pickle
from pathlib import Path

import pytest

from repro import __version__
from repro.core import (
    ComparisonResult,
    ExperimentConfig,
    RunResult,
    run_with_baseline,
    sweep,
    sweep_records,
)
from repro.errors import ConfigError
from repro.parallel import (
    ResultCache,
    SweepExecutor,
    config_key,
    normalized_quiet_twin,
)

BSP_SMALL = {"work_ns": 500_000, "iterations": 10}

#: Per-app parameters small enough that one point is tens of ms.
_DET_APPS = {
    "bsp": BSP_SMALL,
    "stencil": dict(work_ns=500_000, halo_bytes=1024, iterations=4),
    "cg": dict(spmv_ns=500_000, exchange_bytes=1024, iterations=4),
}


def records_blob(records):
    """Canonical byte encoding of sweep_records output."""
    return json.dumps(records, sort_keys=True).encode()


# -- config keys ------------------------------------------------------------

def test_config_key_stable_and_order_insensitive():
    a = ExperimentConfig(app="bsp", nodes=8, seed=3,
                         app_params={"x": 1, "y": 2.5})
    b = ExperimentConfig(app="bsp", nodes=8, seed=3,
                         app_params={"y": 2.5, "x": 1})
    assert config_key(a) == config_key(b)
    assert len(config_key(a)) == 64  # sha256 hex


def test_config_key_differs_on_any_field():
    base = ExperimentConfig(app="bsp", nodes=8, seed=3)
    assert config_key(base) != config_key(ExperimentConfig(
        app="bsp", nodes=8, seed=4))
    assert config_key(base) != config_key(ExperimentConfig(
        app="bsp", nodes=16, seed=3))
    assert config_key(base, salt="v1") != config_key(base, salt="v2")


def test_config_key_survives_hash_seed_and_wall_clock():
    """Cache keys must be content-only: identical across processes with
    different PYTHONHASHSEED values (set iteration inside the token
    builder must be sorted) and free of any wall-clock component."""
    import subprocess
    import sys

    script = (
        "from repro.core import ExperimentConfig;"
        "from repro.parallel.cache import config_key;"
        "cfg = ExperimentConfig(app='bsp', nodes=8, seed=3,"
        " app_params={'alpha': 1, 'beta': 2.5, 'gamma': 'x'});"
        "print(config_key(cfg))")
    keys = set()
    for hash_seed in ("0", "1", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                   PYTHONPATH="src")
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, env=env,
                             cwd=Path(__file__).resolve().parent.parent)
        assert out.returncode == 0, out.stderr
        keys.add(out.stdout.strip())
    assert len(keys) == 1  # same config -> same key, every process


def test_config_key_handles_instance_substrate():
    from repro.kernel import KernelConfig
    cfg = ExperimentConfig(kernel=KernelConfig(name="custom", hz=250))
    assert config_key(cfg) == config_key(
        ExperimentConfig(kernel=KernelConfig(name="custom", hz=250)))
    assert config_key(cfg) != config_key(
        ExperimentConfig(kernel=KernelConfig(name="custom", hz=1000)))


def test_normalized_quiet_twin_merges_alignments():
    a = ExperimentConfig(noise_pattern="2.5pct@10Hz", alignment="staggered")
    b = ExperimentConfig(noise_pattern="2.5pct@10Hz", alignment="random")
    assert config_key(normalized_quiet_twin(a)) == config_key(
        normalized_quiet_twin(b))


# -- the cache --------------------------------------------------------------

def test_cache_roundtrip_and_stats(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp", app_params=BSP_SMALL)
    assert cache.get(cfg) is None
    assert cache.stats.misses == 1
    cache.put(cfg, {"makespan": 123})
    assert cache.stats.stores == 1
    assert len(cache) == 1
    assert cache.get(cfg) == {"makespan": 123}
    assert cache.stats.hits == 1


def test_cache_version_bump_invalidates(tmp_path):
    old = ResultCache(tmp_path, version="0.9.0")
    cfg = ExperimentConfig(app="bsp")
    old.put(cfg, "stale")
    new = ResultCache(tmp_path)  # current __version__
    assert new.version == __version__
    assert new.get(cfg) is None


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp")
    cache.put(cfg, "fine")
    path = cache._path(cfg)
    path.write_bytes(b"not a pickle")
    assert cache.get(cfg) is None
    assert not path.exists()  # corrupt entry dropped


def test_cache_get_or_run_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp")
    calls = []
    assert cache.get_or_run(cfg, lambda: calls.append(1) or "v") == "v"
    assert cache.get_or_run(cfg, lambda: calls.append(1) or "v") == "v"
    assert len(calls) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


def test_cached_result_roundtrips_run_result(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp", nodes=2, app_params=BSP_SMALL)
    from repro.core import run_experiment
    fresh = run_experiment(cfg)
    cache.put(cfg, fresh)
    back = cache.get(cfg)
    assert isinstance(back, RunResult)
    assert back.as_dict() == fresh.as_dict()
    assert (back.iteration_durations_ns == fresh.iteration_durations_ns).all()


# -- executor construction --------------------------------------------------

def test_executor_worker_validation():
    assert SweepExecutor(workers=1).workers == 1
    assert SweepExecutor(workers=None).workers >= 1
    assert SweepExecutor(workers=0).workers >= 1
    with pytest.raises(ConfigError):
        SweepExecutor(workers=-2)


def test_executor_cache_coercion(tmp_path):
    assert SweepExecutor().cache is None
    ex = SweepExecutor(cache=tmp_path)
    assert isinstance(ex.cache, ResultCache)
    cache = ResultCache(tmp_path)
    assert SweepExecutor(cache=cache).cache is cache


def test_empty_sweep_rejected():
    ex = SweepExecutor()
    base = ExperimentConfig(app="bsp", app_params=BSP_SMALL)
    with pytest.raises(ConfigError):
        ex.run_sweep(base, nodes=[], patterns=["quiet"])
    with pytest.raises(ConfigError):
        ex.run_sweep(base, nodes=[2], patterns=[])


# -- determinism: parallel == serial, byte for byte -------------------------

@pytest.mark.parametrize("app", sorted(_DET_APPS))
def test_parallel_and_serial_sweeps_bit_identical(app):
    base = ExperimentConfig(app=app, seed=7, app_params=_DET_APPS[app])
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])
    serial = sweep_records(base, workers=1, **kwargs)
    parallel = sweep_records(base, workers=4, **kwargs)
    assert records_blob(serial) == records_blob(parallel)


def test_parallel_sweep_structure_matches_serial():
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    results = sweep(base, nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"],
                    workers=2)
    assert list(results) == [(2, "quiet"), (2, "2.5pct@100Hz"),
                             (4, "quiet"), (4, "2.5pct@100Hz")]
    assert isinstance(results[(2, "quiet")], RunResult)
    cmp = results[(2, "2.5pct@100Hz")]
    assert isinstance(cmp, ComparisonResult)
    # Shared-baseline identity survives the process round-trip.
    assert cmp.quiet is results[(2, "quiet")]


def test_sweep_records_sorted_by_nodes_then_pattern():
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    # Deliberately unsorted axes.
    recs = sweep_records(base, nodes=[4, 2],
                         patterns=["2.5pct@100Hz", "quiet"])
    keys = [(r["nodes"], r["pattern"]) for r in recs]
    assert keys == sorted(keys)


def test_parallel_progress_reports_every_point():
    seen = []
    base = ExperimentConfig(app="bsp", app_params=BSP_SMALL)
    sweep(base, nodes=[2], patterns=["2.5pct@100Hz"], workers=2,
          progress=seen.append)
    assert any("baseline" in s for s in seen)
    assert any("2.5pct@100Hz" in s for s in seen)


# -- cache-aware sweeps ------------------------------------------------------

def test_second_sweep_serves_baselines_from_cache(tmp_path):
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])

    first = SweepExecutor(workers=1, cache=tmp_path)
    first.run_sweep(base, **kwargs)
    assert first.last_stats.quiet_simulated == 2
    assert first.last_stats.quiet_cached == 0

    second = SweepExecutor(workers=1, cache=tmp_path)
    second.run_sweep(base, **kwargs)
    assert second.last_stats.quiet_simulated == 0
    assert second.last_stats.quiet_cached == 2
    assert second.last_stats.noisy_simulated == 0
    assert second.cache.stats.hits == 4
    assert second.cache.stats.misses == 0


def test_cached_sweep_output_identical_to_fresh(tmp_path):
    base = ExperimentConfig(app="cg", seed=5, app_params=_DET_APPS["cg"])
    kwargs = dict(nodes=[2], patterns=["quiet", "2.5pct@100Hz"])
    fresh = sweep_records(base, workers=1, **kwargs)
    primed = sweep_records(base, workers=1, cache=tmp_path, **kwargs)
    cached = sweep_records(base, workers=1, cache=tmp_path, **kwargs)
    assert records_blob(fresh) == records_blob(primed) == records_blob(cached)


def test_baselines_shared_across_different_sweeps(tmp_path):
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    SweepExecutor(workers=1, cache=tmp_path).run_sweep(
        base, nodes=[2, 4], patterns=["2.5pct@100Hz"])
    # A different pattern set still reuses the quiet baselines.
    ex = SweepExecutor(workers=1, cache=tmp_path)
    ex.run_sweep(base, nodes=[2, 4], patterns=["2.5pct@1000Hz"])
    assert ex.last_stats.quiet_simulated == 0
    assert ex.last_stats.quiet_cached == 2
    assert ex.last_stats.noisy_simulated == 2


# -- comparison fan-out ------------------------------------------------------

def test_run_comparisons_matches_run_with_baseline():
    cfgs = {a: ExperimentConfig(app="bsp", nodes=4,
                                noise_pattern="2.5pct@100Hz", alignment=a,
                                seed=1, app_params=BSP_SMALL)
            for a in ("random", "synchronized")}
    got = SweepExecutor(workers=1).run_comparisons(cfgs)
    for a, cfg in cfgs.items():
        want = run_with_baseline(cfg)
        assert got[a].as_dict() == want.as_dict()


def test_run_comparisons_dedups_quiet_twins():
    cfgs = {a: ExperimentConfig(app="bsp", nodes=4,
                                noise_pattern="2.5pct@100Hz", alignment=a,
                                seed=1, app_params=BSP_SMALL)
            for a in ("random", "synchronized", "staggered")}
    ex = SweepExecutor(workers=1)
    got = ex.run_comparisons(cfgs)
    # One shared baseline simulation for three comparisons.
    assert ex.last_stats.quiet_simulated == 1
    assert ex.last_stats.noisy_simulated == 3
    quiets = {id(cmp.quiet) for cmp in got.values()}
    assert len(quiets) == 1


def test_run_comparisons_rejects_quiet_config():
    with pytest.raises(ConfigError):
        SweepExecutor().run_comparisons(
            {"x": ExperimentConfig(noise_pattern="quiet")})


# -- stats ------------------------------------------------------------------

def test_sweep_stats_shape(tmp_path):
    ex = SweepExecutor(workers=1, cache=tmp_path)
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    ex.run_sweep(base, nodes=[2], patterns=["quiet", "2.5pct@100Hz"])
    stats = ex.last_stats
    assert stats.points == 2
    assert stats.wall_s > 0
    assert stats.simulated_s > 0
    d = stats.as_dict()
    assert d["workers"] == 1
    assert d["quiet_simulated"] == 1
    assert d["noisy_simulated"] == 1
    assert pickle.loads(pickle.dumps(stats)).points == 2


# -- PR 7 regressions: dict-key collision, tmp litter, span starts ----------

def test_config_key_dict_int_vs_str_keys_differ():
    """{1: x} and {"1": x} dict keys must not collapse onto one cache
    key (the set-token collision PR 2 fixed, in dict form)."""
    a = ExperimentConfig(app="bsp", app_params={"table": {1: 5}})
    b = ExperimentConfig(app="bsp", app_params={"table": {"1": 5}})
    assert config_key(a) != config_key(b)


def test_config_key_dict_mixed_key_types_stable():
    """Mixed-type dict keys sort by their typed JSON token, not str()."""
    from repro.parallel import config_token

    a = config_token({1: "a", "1": "b", 2: "c"})
    b = config_token({"1": "b", 2: "c", 1: "a"})
    assert a == b
    # Both entries survive with distinct key tokens.
    keys = [k for k, _v in a[1]]
    assert 1 in keys and "1" in keys


def test_cache_sweeps_stale_tmp_litter(tmp_path):
    """Orphaned *.tmp files (worker killed between mkstemp and
    os.replace) are swept age-gated on init and clear()."""
    cache = ResultCache(tmp_path)
    cache.put({"k": 1}, "v")
    d = cache._dir
    stale = d / "deadbeef.tmp"
    stale.write_bytes(b"torn write")
    os.utime(stale, (1, 1))  # ancient
    fresh = d / "inflight.tmp"
    fresh.write_bytes(b"concurrent writer")

    # A new cache over the same root sweeps the stale file on init but
    # never touches a fresh (possibly in-flight) temp file.
    again = ResultCache(tmp_path)
    assert not stale.exists()
    assert fresh.exists()
    assert again.get({"k": 1}) == "v"

    os.utime(fresh, (1, 1))
    again.clear()
    assert not fresh.exists()
    assert len(again) == 0


def test_pooled_span_start_times_are_true_worker_stamps(monkeypatch):
    """Sweep trace spans carry the worker's real start stamp, not
    'collection time minus elapsed' (which shifts pooled spans)."""
    import repro.obs.runtime as obs_runtime
    import repro.parallel.executor as mod
    from repro import obs

    obs.configure(trace=True)
    tr = obs_runtime.tracer()
    result = object()

    def stamped(cfg, det_check=False):
        # A point that ran from t0+10s to t0+11.5s in some worker, but
        # is only *collected* now (perf_counter() >> t0 + 11.5 is not
        # required; the stamps simply are not "now").
        return result, tr._t0 + 10.0, tr._t0 + 11.5

    monkeypatch.setattr(mod, "_run_point", stamped)
    ex = SweepExecutor(workers=1)
    served, timings = ex.run_configs(
        {"pt": ExperimentConfig(app="bsp", app_params=BSP_SMALL)})
    assert served["pt"] is result
    assert timings["pt"].elapsed_s == pytest.approx(1.5)
    span = next(e for e in tr.events() if e["cat"] == "sweep")
    assert span["ts"] == pytest.approx(10.0 * 1e6)   # us since tracer t0
    assert span["dur"] == pytest.approx(1.5 * 1e6)


# -- sharded cache ----------------------------------------------------------

def test_sharded_cache_layout_and_roundtrip(tmp_path):
    from repro.parallel import ShardedResultCache

    cache = ShardedResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp", seed=9)
    cache.put(cfg, "value")
    key = cache.key(cfg)
    shard = cache._dir / key[:2] / f"{key}.pkl"
    assert shard.is_file()
    assert cache.get(cfg) == "value"
    assert len(cache) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


def test_sharded_cache_migrates_flat_layout(tmp_path):
    """Entries written by the flat layout are sharded on init and stay
    readable throughout (server and old CLI can share a root)."""
    from repro.parallel import ShardedResultCache

    flat = ResultCache(tmp_path)
    cfgs = [ExperimentConfig(app="bsp", seed=s) for s in range(5)]
    for i, cfg in enumerate(cfgs):
        flat.put(cfg, f"v{i}")
    assert all((flat._dir / f"{flat.key(c)}.pkl").is_file() for c in cfgs)

    sharded = ShardedResultCache(tmp_path)
    # Flat files are gone, every entry now lives in its shard ...
    assert not any(p.suffix == ".pkl" for p in sharded._dir.iterdir()
                   if p.is_file())
    for i, cfg in enumerate(cfgs):
        key = sharded.key(cfg)
        assert (sharded._dir / key[:2] / f"{key}.pkl").is_file()
        assert sharded.get(cfg) == f"v{i}"
    assert len(sharded) == len(cfgs)


def test_sharded_cache_promotes_flat_entry_written_later(tmp_path):
    """A flat entry appearing *after* migration (older writer sharing
    the directory) is still served, and promoted on first read."""
    from repro.parallel import ShardedResultCache

    sharded = ShardedResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp", seed=4)
    ResultCache(tmp_path).put(cfg, "late")
    assert sharded.get(cfg) == "late"
    key = sharded.key(cfg)
    assert (sharded._dir / key[:2] / f"{key}.pkl").is_file()
    assert not (sharded._dir / f"{key}.pkl").exists()
    assert sharded.stats.hits == 1 and sharded.stats.misses == 0


def test_sharded_and_flat_caches_share_keys(tmp_path):
    from repro.parallel import ShardedResultCache

    cfg = ExperimentConfig(app="bsp", seed=11)
    assert (ShardedResultCache(tmp_path).key(cfg)
            == ResultCache(tmp_path).key(cfg))


def test_executor_paths_root_sharded_caches(tmp_path):
    from repro.parallel import ShardedResultCache

    ex = SweepExecutor(cache=tmp_path)
    assert isinstance(ex.cache, ShardedResultCache)


def test_sharded_cache_sweep_identical_to_flat(tmp_path):
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])
    plain = sweep_records(base, **kwargs)
    warm = SweepExecutor(workers=1, cache=tmp_path / "c")
    warm.run_sweep(base, **kwargs)
    served = SweepExecutor(workers=1, cache=tmp_path / "c")
    results = served.run_sweep(base, **kwargs)
    records = []
    for (p, pattern), res in sorted(results.items()):
        record = res.as_dict()
        record.setdefault("nodes", p)
        record.setdefault("pattern", pattern)
        records.append(record)
    assert records_blob(records) == records_blob(plain)
    assert served.last_stats.quiet_cached == 2
    assert served.last_stats.noisy_cached == 2


# -- persistent pool --------------------------------------------------------

def test_persistent_pool_reused_and_closed():
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    with SweepExecutor(workers=2, persistent=True) as ex:
        ex.run_sweep(base, nodes=[2], patterns=["quiet", "2.5pct@100Hz"])
        pool = ex._pool
        assert pool is not None
        ex.run_sweep(base, nodes=[4], patterns=["quiet", "2.5pct@100Hz"])
        assert ex._pool is pool  # same pool, not a new one per sweep
    assert ex._pool is None


def test_submit_config_requires_persistent():
    ex = SweepExecutor(workers=2)
    with pytest.raises(ConfigError):
        ex.submit_config(ExperimentConfig(app="bsp", app_params=BSP_SMALL))


def test_submit_config_matches_serial():
    cfg = ExperimentConfig(app="bsp", seed=5, app_params=BSP_SMALL)
    from repro.core import run_experiment

    with SweepExecutor(workers=1, persistent=True) as ex:
        result, t0, t1 = ex.submit_config(cfg).result()
    assert t1 >= t0
    serial = run_experiment(cfg)
    assert records_blob([result.as_dict()]) == records_blob(
        [serial.as_dict()])


def test_persistent_sweep_identical_to_serial():
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])
    serial = sweep_records(base, workers=1, **kwargs)
    with SweepExecutor(workers=2, persistent=True) as ex:
        results = ex.run_sweep(base, **kwargs)
    records = []
    for (p, pattern), res in sorted(results.items()):
        record = res.as_dict()
        record.setdefault("nodes", p)
        record.setdefault("pattern", pattern)
        records.append(record)
    assert records_blob(records) == records_blob(serial)
