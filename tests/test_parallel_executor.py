"""Tests for the parallel sweep executor and the on-disk result cache."""

import json
import os
import pickle
from pathlib import Path

import pytest

from repro import __version__
from repro.core import (
    ComparisonResult,
    ExperimentConfig,
    RunResult,
    run_with_baseline,
    sweep,
    sweep_records,
)
from repro.errors import ConfigError
from repro.parallel import (
    ResultCache,
    SweepExecutor,
    config_key,
    normalized_quiet_twin,
)

BSP_SMALL = {"work_ns": 500_000, "iterations": 10}

#: Per-app parameters small enough that one point is tens of ms.
_DET_APPS = {
    "bsp": BSP_SMALL,
    "stencil": dict(work_ns=500_000, halo_bytes=1024, iterations=4),
    "cg": dict(spmv_ns=500_000, exchange_bytes=1024, iterations=4),
}


def records_blob(records):
    """Canonical byte encoding of sweep_records output."""
    return json.dumps(records, sort_keys=True).encode()


# -- config keys ------------------------------------------------------------

def test_config_key_stable_and_order_insensitive():
    a = ExperimentConfig(app="bsp", nodes=8, seed=3,
                         app_params={"x": 1, "y": 2.5})
    b = ExperimentConfig(app="bsp", nodes=8, seed=3,
                         app_params={"y": 2.5, "x": 1})
    assert config_key(a) == config_key(b)
    assert len(config_key(a)) == 64  # sha256 hex


def test_config_key_differs_on_any_field():
    base = ExperimentConfig(app="bsp", nodes=8, seed=3)
    assert config_key(base) != config_key(ExperimentConfig(
        app="bsp", nodes=8, seed=4))
    assert config_key(base) != config_key(ExperimentConfig(
        app="bsp", nodes=16, seed=3))
    assert config_key(base, salt="v1") != config_key(base, salt="v2")


def test_config_key_survives_hash_seed_and_wall_clock():
    """Cache keys must be content-only: identical across processes with
    different PYTHONHASHSEED values (set iteration inside the token
    builder must be sorted) and free of any wall-clock component."""
    import subprocess
    import sys

    script = (
        "from repro.core import ExperimentConfig;"
        "from repro.parallel.cache import config_key;"
        "cfg = ExperimentConfig(app='bsp', nodes=8, seed=3,"
        " app_params={'alpha': 1, 'beta': 2.5, 'gamma': 'x'});"
        "print(config_key(cfg))")
    keys = set()
    for hash_seed in ("0", "1", "42"):
        env = dict(os.environ, PYTHONHASHSEED=hash_seed,
                   PYTHONPATH="src")
        out = subprocess.run([sys.executable, "-c", script],
                             capture_output=True, text=True, env=env,
                             cwd=Path(__file__).resolve().parent.parent)
        assert out.returncode == 0, out.stderr
        keys.add(out.stdout.strip())
    assert len(keys) == 1  # same config -> same key, every process


def test_config_key_handles_instance_substrate():
    from repro.kernel import KernelConfig
    cfg = ExperimentConfig(kernel=KernelConfig(name="custom", hz=250))
    assert config_key(cfg) == config_key(
        ExperimentConfig(kernel=KernelConfig(name="custom", hz=250)))
    assert config_key(cfg) != config_key(
        ExperimentConfig(kernel=KernelConfig(name="custom", hz=1000)))


def test_normalized_quiet_twin_merges_alignments():
    a = ExperimentConfig(noise_pattern="2.5pct@10Hz", alignment="staggered")
    b = ExperimentConfig(noise_pattern="2.5pct@10Hz", alignment="random")
    assert config_key(normalized_quiet_twin(a)) == config_key(
        normalized_quiet_twin(b))


# -- the cache --------------------------------------------------------------

def test_cache_roundtrip_and_stats(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp", app_params=BSP_SMALL)
    assert cache.get(cfg) is None
    assert cache.stats.misses == 1
    cache.put(cfg, {"makespan": 123})
    assert cache.stats.stores == 1
    assert len(cache) == 1
    assert cache.get(cfg) == {"makespan": 123}
    assert cache.stats.hits == 1


def test_cache_version_bump_invalidates(tmp_path):
    old = ResultCache(tmp_path, version="0.9.0")
    cfg = ExperimentConfig(app="bsp")
    old.put(cfg, "stale")
    new = ResultCache(tmp_path)  # current __version__
    assert new.version == __version__
    assert new.get(cfg) is None


def test_cache_corrupt_entry_is_a_miss(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp")
    cache.put(cfg, "fine")
    path = cache._path(cfg)
    path.write_bytes(b"not a pickle")
    assert cache.get(cfg) is None
    assert not path.exists()  # corrupt entry dropped


def test_cache_get_or_run_and_clear(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp")
    calls = []
    assert cache.get_or_run(cfg, lambda: calls.append(1) or "v") == "v"
    assert cache.get_or_run(cfg, lambda: calls.append(1) or "v") == "v"
    assert len(calls) == 1
    assert cache.clear() == 1
    assert len(cache) == 0


def test_cached_result_roundtrips_run_result(tmp_path):
    cache = ResultCache(tmp_path)
    cfg = ExperimentConfig(app="bsp", nodes=2, app_params=BSP_SMALL)
    from repro.core import run_experiment
    fresh = run_experiment(cfg)
    cache.put(cfg, fresh)
    back = cache.get(cfg)
    assert isinstance(back, RunResult)
    assert back.as_dict() == fresh.as_dict()
    assert (back.iteration_durations_ns == fresh.iteration_durations_ns).all()


# -- executor construction --------------------------------------------------

def test_executor_worker_validation():
    assert SweepExecutor(workers=1).workers == 1
    assert SweepExecutor(workers=None).workers >= 1
    assert SweepExecutor(workers=0).workers >= 1
    with pytest.raises(ConfigError):
        SweepExecutor(workers=-2)


def test_executor_cache_coercion(tmp_path):
    assert SweepExecutor().cache is None
    ex = SweepExecutor(cache=tmp_path)
    assert isinstance(ex.cache, ResultCache)
    cache = ResultCache(tmp_path)
    assert SweepExecutor(cache=cache).cache is cache


def test_empty_sweep_rejected():
    ex = SweepExecutor()
    base = ExperimentConfig(app="bsp", app_params=BSP_SMALL)
    with pytest.raises(ConfigError):
        ex.run_sweep(base, nodes=[], patterns=["quiet"])
    with pytest.raises(ConfigError):
        ex.run_sweep(base, nodes=[2], patterns=[])


# -- determinism: parallel == serial, byte for byte -------------------------

@pytest.mark.parametrize("app", sorted(_DET_APPS))
def test_parallel_and_serial_sweeps_bit_identical(app):
    base = ExperimentConfig(app=app, seed=7, app_params=_DET_APPS[app])
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])
    serial = sweep_records(base, workers=1, **kwargs)
    parallel = sweep_records(base, workers=4, **kwargs)
    assert records_blob(serial) == records_blob(parallel)


def test_parallel_sweep_structure_matches_serial():
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    results = sweep(base, nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"],
                    workers=2)
    assert list(results) == [(2, "quiet"), (2, "2.5pct@100Hz"),
                             (4, "quiet"), (4, "2.5pct@100Hz")]
    assert isinstance(results[(2, "quiet")], RunResult)
    cmp = results[(2, "2.5pct@100Hz")]
    assert isinstance(cmp, ComparisonResult)
    # Shared-baseline identity survives the process round-trip.
    assert cmp.quiet is results[(2, "quiet")]


def test_sweep_records_sorted_by_nodes_then_pattern():
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    # Deliberately unsorted axes.
    recs = sweep_records(base, nodes=[4, 2],
                         patterns=["2.5pct@100Hz", "quiet"])
    keys = [(r["nodes"], r["pattern"]) for r in recs]
    assert keys == sorted(keys)


def test_parallel_progress_reports_every_point():
    seen = []
    base = ExperimentConfig(app="bsp", app_params=BSP_SMALL)
    sweep(base, nodes=[2], patterns=["2.5pct@100Hz"], workers=2,
          progress=seen.append)
    assert any("baseline" in s for s in seen)
    assert any("2.5pct@100Hz" in s for s in seen)


# -- cache-aware sweeps ------------------------------------------------------

def test_second_sweep_serves_baselines_from_cache(tmp_path):
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    kwargs = dict(nodes=[2, 4], patterns=["quiet", "2.5pct@100Hz"])

    first = SweepExecutor(workers=1, cache=tmp_path)
    first.run_sweep(base, **kwargs)
    assert first.last_stats.quiet_simulated == 2
    assert first.last_stats.quiet_cached == 0

    second = SweepExecutor(workers=1, cache=tmp_path)
    second.run_sweep(base, **kwargs)
    assert second.last_stats.quiet_simulated == 0
    assert second.last_stats.quiet_cached == 2
    assert second.last_stats.noisy_simulated == 0
    assert second.cache.stats.hits == 4
    assert second.cache.stats.misses == 0


def test_cached_sweep_output_identical_to_fresh(tmp_path):
    base = ExperimentConfig(app="cg", seed=5, app_params=_DET_APPS["cg"])
    kwargs = dict(nodes=[2], patterns=["quiet", "2.5pct@100Hz"])
    fresh = sweep_records(base, workers=1, **kwargs)
    primed = sweep_records(base, workers=1, cache=tmp_path, **kwargs)
    cached = sweep_records(base, workers=1, cache=tmp_path, **kwargs)
    assert records_blob(fresh) == records_blob(primed) == records_blob(cached)


def test_baselines_shared_across_different_sweeps(tmp_path):
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    SweepExecutor(workers=1, cache=tmp_path).run_sweep(
        base, nodes=[2, 4], patterns=["2.5pct@100Hz"])
    # A different pattern set still reuses the quiet baselines.
    ex = SweepExecutor(workers=1, cache=tmp_path)
    ex.run_sweep(base, nodes=[2, 4], patterns=["2.5pct@1000Hz"])
    assert ex.last_stats.quiet_simulated == 0
    assert ex.last_stats.quiet_cached == 2
    assert ex.last_stats.noisy_simulated == 2


# -- comparison fan-out ------------------------------------------------------

def test_run_comparisons_matches_run_with_baseline():
    cfgs = {a: ExperimentConfig(app="bsp", nodes=4,
                                noise_pattern="2.5pct@100Hz", alignment=a,
                                seed=1, app_params=BSP_SMALL)
            for a in ("random", "synchronized")}
    got = SweepExecutor(workers=1).run_comparisons(cfgs)
    for a, cfg in cfgs.items():
        want = run_with_baseline(cfg)
        assert got[a].as_dict() == want.as_dict()


def test_run_comparisons_dedups_quiet_twins():
    cfgs = {a: ExperimentConfig(app="bsp", nodes=4,
                                noise_pattern="2.5pct@100Hz", alignment=a,
                                seed=1, app_params=BSP_SMALL)
            for a in ("random", "synchronized", "staggered")}
    ex = SweepExecutor(workers=1)
    got = ex.run_comparisons(cfgs)
    # One shared baseline simulation for three comparisons.
    assert ex.last_stats.quiet_simulated == 1
    assert ex.last_stats.noisy_simulated == 3
    quiets = {id(cmp.quiet) for cmp in got.values()}
    assert len(quiets) == 1


def test_run_comparisons_rejects_quiet_config():
    with pytest.raises(ConfigError):
        SweepExecutor().run_comparisons(
            {"x": ExperimentConfig(noise_pattern="quiet")})


# -- stats ------------------------------------------------------------------

def test_sweep_stats_shape(tmp_path):
    ex = SweepExecutor(workers=1, cache=tmp_path)
    base = ExperimentConfig(app="bsp", seed=2, app_params=BSP_SMALL)
    ex.run_sweep(base, nodes=[2], patterns=["quiet", "2.5pct@100Hz"])
    stats = ex.last_stats
    assert stats.points == 2
    assert stats.wall_s > 0
    assert stats.simulated_s > 0
    d = stats.as_dict()
    assert d["workers"] == 1
    assert d["quiet_simulated"] == 1
    assert d["noisy_simulated"] == 1
    assert pickle.loads(pickle.dumps(stats)).points == 2
