"""Unit tests for Store and Resource primitives."""

import pytest

from repro.sim import Environment, Resource, Store


def test_store_put_then_get():
    env = Environment()
    store = Store(env)

    def proc(env):
        yield store.put("x")
        item = yield store.get()
        return item

    p = env.process(proc(env))
    assert env.run(until=p) == "x"


def test_store_get_blocks_until_put():
    env = Environment()
    store = Store(env)
    log = []

    def consumer(env):
        item = yield store.get()
        log.append((env.now, item))

    def producer(env):
        yield env.timeout(30)
        yield store.put("late")

    env.process(consumer(env))
    env.process(producer(env))
    env.run()
    assert log == [(30, "late")]


def test_store_fifo_ordering():
    env = Environment()
    store = Store(env)
    got = []

    def consumer(env, tag):
        item = yield store.get()
        got.append((tag, item))

    def producer(env):
        yield env.timeout(5)
        yield store.put("first")
        yield store.put("second")

    env.process(consumer(env, "c1"))
    env.process(consumer(env, "c2"))
    env.process(producer(env))
    env.run()
    assert got == [("c1", "first"), ("c2", "second")]


def test_bounded_store_blocks_put_when_full():
    env = Environment()
    store = Store(env, capacity=1)
    log = []

    def producer(env):
        yield store.put(1)
        log.append(("put1", env.now))
        yield store.put(2)
        log.append(("put2", env.now))

    def consumer(env):
        yield env.timeout(40)
        item = yield store.get()
        log.append(("got", item, env.now))

    env.process(producer(env))
    env.process(consumer(env))
    env.run()
    assert log == [("put1", 0), ("got", 1, 40), ("put2", 40)]
    assert len(store) == 1


def test_store_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Store(env, capacity=0)


def test_resource_capacity_limits_concurrency():
    env = Environment()
    res = Resource(env, capacity=2)
    active_high_water = []

    def worker(env):
        yield res.request()
        active_high_water.append(res.in_use)
        yield env.timeout(10)
        res.release()

    for _ in range(5):
        env.process(worker(env))
    env.run()
    assert max(active_high_water) <= 2
    assert res.in_use == 0
    assert res.queued == 0


def test_resource_fifo_grant_order():
    env = Environment()
    res = Resource(env, capacity=1)
    order = []

    def worker(env, tag, hold):
        yield res.request()
        order.append(tag)
        yield env.timeout(hold)
        res.release()

    env.process(worker(env, "a", 10))
    env.process(worker(env, "b", 10))
    env.process(worker(env, "c", 10))
    env.run()
    assert order == ["a", "b", "c"]


def test_resource_release_without_request_rejected():
    env = Environment()
    res = Resource(env)
    with pytest.raises(RuntimeError):
        res.release()


def test_resource_invalid_capacity():
    env = Environment()
    with pytest.raises(ValueError):
        Resource(env, capacity=0)
