"""Cross-module taint engine tests (DET007–DET009).

The headline regression here is the one ISSUE.md demands: a host-scope
helper returning ``time.time()`` called from sim code is *invisible* to
v1-style single-module analysis (``lint_source``) and *caught* by the
two-pass project analysis (``lint_paths``).  The rest exercises the
taint fixpoint's sources, sanitizers, suppression handling, and the
DET008/DET009 rules on positive and negative fixtures.
"""

import textwrap
from pathlib import Path

from repro.lint.callgraph import build_index, module_name
from repro.lint.engine import ModuleUnderLint, lint_paths, lint_source
from repro.lint.taint import TaintAnalysis


def make_tree(tmp_path: Path, files: dict[str, str]) -> Path:
    """Write ``{relative path: source}`` under ``tmp_path/repro``."""
    root = tmp_path / "repro"
    for rel, src in files.items():
        target = root / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(textwrap.dedent(src))
    return root


def project_rules(report):
    return sorted(f.rule for f in report.findings)


# -- DET007: the v1-blindness regression ------------------------------------

LEAKY_HELPER = """
    import time

    def stamp():
        return time.time()
"""

SIM_CALLER = """
    from repro.harness.clockutil import stamp

    def tick(env):
        return stamp()
"""


def test_det007_catches_what_single_module_analysis_cannot(tmp_path):
    """The acceptance regression: the same sim module is clean under
    v1-style per-file analysis and dirty under the taint engine."""
    root = make_tree(tmp_path, {
        "harness/clockutil.py": LEAKY_HELPER,
        "sim/uses.py": SIM_CALLER,
    })
    # v1 view: the sim file alone has no wall-clock call to see.
    solo, _ = lint_source(textwrap.dedent(SIM_CALLER),
                          "repro/sim/uses.py", scope="sim")
    assert solo == []
    # v2 view: the project index traces the taint across the boundary.
    report = lint_paths([root])
    assert project_rules(report) == ["DET007"]
    (finding,) = report.findings
    assert finding.path == "repro/sim/uses.py"
    assert "clockutil.stamp" in finding.message
    assert "repro.harness.clockutil" in finding.message


def test_det007_flags_tainted_global_read(tmp_path):
    root = make_tree(tmp_path, {
        "harness/hostinfo.py": """
            import os

            PID = os.getpid()
        """,
        "sim/reads.py": """
            from repro.harness.hostinfo import PID

            def jitter(env):
                return PID
        """,
    })
    report = lint_paths([root])
    assert project_rules(report) == ["DET007"]
    (finding,) = report.findings
    assert finding.path == "repro/sim/reads.py"
    assert "PID" in finding.message


def test_det007_traces_taint_through_intermediate_helpers(tmp_path):
    """Two hops: source -> helper -> wrapper -> sim call site."""
    root = make_tree(tmp_path, {
        "harness/clockutil.py": LEAKY_HELPER,
        "harness/wrap.py": """
            from repro.harness.clockutil import stamp

            def stamped_label(tag):
                return f"{tag}@{stamp()}"
        """,
        "sim/deep.py": """
            from repro.harness.wrap import stamped_label

            def label(env):
                return stamped_label("run")
        """,
    })
    report = lint_paths([root])
    assert project_rules(report) == ["DET007"]
    assert report.findings[0].path == "repro/sim/deep.py"


def test_det007_silent_on_pure_helpers_and_same_module(tmp_path):
    root = make_tree(tmp_path, {
        "harness/mathutil.py": """
            def double(x):
                return x * 2
        """,
        "sim/pure.py": """
            from repro.harness.mathutil import double

            def step(env):
                return double(env.now)
        """,
    })
    assert project_rules(lint_paths([root])) == []


def test_det007_suppressed_source_does_not_cascade(tmp_path):
    """A justified suppression at the source (the oplog pattern) must
    not re-surface as DET007 at every caller."""
    root = make_tree(tmp_path, {
        "harness/clockutil.py": """
            import time

            def stamp():
                return time.time()  # detlint: disable=DET001 -- log ts
        """,
        "sim/uses.py": SIM_CALLER,
    })
    assert project_rules(lint_paths([root])) == []


def test_det007_sanitizer_namespace_clears_taint(tmp_path):
    """Calls resolving into repro.sim.rng return seed-derived values;
    even a host-state argument does not taint the result."""
    root = make_tree(tmp_path, {
        "sim/rng.py": """
            def stream(label):
                return hash(label)
        """,
        "harness/mixer.py": """
            import time
            from repro.sim import rng

            def seeded():
                return rng.stream(time.time())
        """,
        "sim/consumer.py": """
            from repro.harness.mixer import seeded

            def draw(env):
                return seeded()
        """,
    })
    assert project_rules(lint_paths([root])) == []


def test_taint_analysis_exposes_reasons(tmp_path):
    root = make_tree(tmp_path, {
        "harness/clockutil.py": LEAKY_HELPER,
        "harness/hostinfo.py": "import os\n\nHOST_PID = os.getpid()\n",
    })
    mods = [ModuleUnderLint(path.read_text(),
                            f"repro/{path.relative_to(root)}", "host")
            for path in sorted(root.rglob("*.py"))]
    index = build_index(mods)
    taint = TaintAnalysis.of(index)
    assert taint is TaintAnalysis.of(index)  # cached per index
    stamp = taint.tainted_functions["repro.harness.clockutil.stamp"]
    assert "time.time" in stamp
    pid = taint.tainted_globals["repro.harness.hostinfo.HOST_PID"]
    assert "os.getpid" in pid


def test_module_name_from_normalized_path():
    assert module_name("repro/sim/core.py") == "repro.sim.core"
    assert module_name("repro/harness/__init__.py") == "repro.harness"


# -- DET008: mutable module global written from sim code --------------------

def sim_findings(src):
    found, _ = lint_source(textwrap.dedent(src),
                           "repro/sim/fixture.py", scope="sim")
    return sorted(f.rule for f in found)


def test_det008_flags_global_rebind_and_container_writes():
    src = """
        _CACHE = {}
        _LOG = []
        _EPOCH = 0

        def remember(key, value):
            _CACHE[key] = value

        def record(event):
            _LOG.append(event)

        def advance():
            global _EPOCH
            _EPOCH = _EPOCH + 1
    """
    assert sim_findings(src) == ["DET008", "DET008", "DET008"]


def test_det008_silent_on_locals_shadows_and_host_scope():
    src = """
        _CACHE = {}

        def pure(key, value):
            _CACHE = {}
            _CACHE[key] = value
            return _CACHE

        def reader(key):
            return _CACHE.get(key)
    """
    assert sim_findings(src) == []
    dirty = "_JOBS = {}\n\ndef track(k, v):\n    _JOBS[k] = v\n"
    found, _ = lint_source(dirty, "repro/harness/fixture.py", scope="host")
    assert [f.rule for f in found] == []


# -- DET009: host-tainted defaults ------------------------------------------

def test_det009_flags_tainted_default_argument(tmp_path):
    root = make_tree(tmp_path, {
        "harness/clockutil.py": LEAKY_HELPER,
        "sim/defaults.py": """
            from repro.harness.clockutil import stamp

            def run(env, t0=stamp()):
                return t0
    """,
    })
    report = lint_paths([root])
    rules = project_rules(report)
    # the call in the default position is both the DET007 sink and the
    # DET009 import-time evaluation hazard — both are real.
    assert "DET009" in rules and "DET007" in rules
    det9 = next(f for f in report.findings if f.rule == "DET009")
    assert "time.time" in det9.message


def test_det009_flags_dataclass_field_defaults():
    src = """
        import time
        from dataclasses import dataclass, field

        @dataclass
        class RunInfo:
            started: float = time.time()
            host_entropy: float = field(default_factory=time.monotonic)
    """
    rules = sim_findings(src)
    assert rules.count("DET009") == 2
    assert "DET001" in rules  # the direct call is also flagged; both real


def test_det009_silent_on_safe_defaults():
    src = """
        from dataclasses import dataclass, field

        def run(env, t0=None, scale=1.0):
            return t0 if t0 is not None else env.now

        @dataclass
        class RunInfo:
            started: float = 0.0
            tags: list = field(default_factory=list)
    """
    assert sim_findings(src) == []
