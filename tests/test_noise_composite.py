"""Tests for burst, trace-playback, and composite noise sources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError
from repro.noise import (
    BurstNoise,
    CompositeNoise,
    NoiseEvent,
    PeriodicNoise,
    TraceNoise,
    merge_busy_time,
    merged_intervals,
)


# -- interval merging -------------------------------------------------------

def test_merged_intervals_disjoint():
    evs = [NoiseEvent(0, 10, "a"), NoiseEvent(20, 5, "b")]
    assert merged_intervals(evs, 0, 100) == [(0, 10), (20, 25)]


def test_merged_intervals_overlap_collapses():
    evs = [NoiseEvent(0, 10, "a"), NoiseEvent(5, 10, "b")]
    assert merged_intervals(evs, 0, 100) == [(0, 15)]
    assert merge_busy_time(evs, 0, 100) == 15


def test_merged_intervals_clipping():
    evs = [NoiseEvent(0, 10, "a"), NoiseEvent(90, 20, "b")]
    assert merged_intervals(evs, 5, 100) == [(5, 10), (90, 100)]


def test_merged_intervals_adjacent_join():
    evs = [NoiseEvent(0, 10, "a"), NoiseEvent(10, 10, "b")]
    assert merged_intervals(evs, 0, 100) == [(0, 20)]


# -- burst noise --------------------------------------------------------------

def test_burst_event_layout():
    n = BurstNoise(period=1000, duration=10, burst_count=3, burst_gap=5)
    starts = [e.start for e in n.events_in(0, 2000)]
    assert starts == [0, 15, 30, 1000, 1015, 1030]


def test_burst_utilization():
    n = BurstNoise(period=1000, duration=10, burst_count=3, burst_gap=5)
    assert n.utilization == pytest.approx(0.03)
    assert n.stolen_between(0, 10_000) == 300


def test_burst_train_must_fit():
    with pytest.raises(ConfigError):
        BurstNoise(period=100, duration=30, burst_count=3, burst_gap=10)


def test_burst_single_slice_equals_periodic():
    b = BurstNoise(period=1000, duration=10, burst_count=1, burst_gap=0)
    p = PeriodicNoise(1000, 10)
    assert ([e.start for e in b.events_in(0, 10_000)]
            == [e.start for e in p.events_in(0, 10_000)])
    assert b.stolen_between(3, 9_997) == p.stolen_between(3, 9_997)


def test_burst_straddles_window_start():
    n = BurstNoise(period=1000, duration=10, burst_count=3, burst_gap=5)
    # Event at t=30 runs to 40; stolen in [35, 50) must count 5 ns.
    assert n.stolen_between(35, 50) == 5


# -- trace playback -------------------------------------------------------------

def test_trace_single_pass():
    n = TraceNoise([(10, 5), (100, 20)])
    assert [e.start for e in n.events_in(0, 1000)] == [10, 100]
    assert n.stolen_between(0, 1000) == 25


def test_trace_sorts_input():
    n = TraceNoise([(100, 20), (10, 5)])
    assert [e.start for e in n.events_in(0, 1000)] == [10, 100]


def test_trace_repeat_tiles_time():
    n = TraceNoise([(10, 5)], repeat_every=100)
    assert [e.start for e in n.events_in(0, 350)] == [10, 110, 210, 310]
    assert n.utilization == pytest.approx(0.05)


def test_trace_repeat_must_cover():
    with pytest.raises(ConfigError):
        TraceNoise([(10, 50)], repeat_every=40)


def test_trace_rejects_empty_and_bad_events():
    with pytest.raises(ConfigError):
        TraceNoise([])
    with pytest.raises(ConfigError):
        TraceNoise([(-1, 5)])
    with pytest.raises(ConfigError):
        TraceNoise([(0, 0)])


def test_trace_roundtrip_from_noise_events():
    src = PeriodicNoise(100, 7)
    recorded = src.events_in(0, 1000)
    replay = TraceNoise(recorded, repeat_every=1000)
    assert replay.events_in(0, 1000) == [
        NoiseEvent(e.start, e.duration, "trace") for e in recorded]
    assert replay.stolen_between(0, 1000) == src.stolen_between(0, 1000)


# -- composite ---------------------------------------------------------------------

def test_composite_merges_events_in_order():
    a = PeriodicNoise(100, 5, name="a")
    b = PeriodicNoise(100, 5, phase=50, name="b")
    c = CompositeNoise([a, b])
    starts = [(e.start, e.source) for e in c.events_in(0, 200)]
    assert starts == [(0, "a"), (50, "b"), (100, "a"), (150, "b")]


def test_composite_overlap_not_double_counted():
    a = PeriodicNoise(100, 10, name="a")
    b = PeriodicNoise(100, 10, name="b")  # exactly overlapping
    c = CompositeNoise([a, b])
    assert c.stolen_between(0, 1000) == 100  # not 200


def test_composite_duplicate_names_rejected():
    a = PeriodicNoise(100, 5)
    b = PeriodicNoise(200, 5)
    with pytest.raises(ConfigError):
        CompositeNoise([a, b])  # both named "periodic"


def test_composite_total_utilization_guard():
    a = PeriodicNoise(100, 60, name="a")
    b = PeriodicNoise(100, 60, name="b")
    with pytest.raises(ConfigError):
        CompositeNoise([a, b])


def test_composite_flattens_nested():
    a = PeriodicNoise(100, 5, name="a")
    b = PeriodicNoise(100, 5, phase=50, name="b")
    c = PeriodicNoise(1000, 5, phase=20, name="c")
    nested = CompositeNoise([CompositeNoise([a, b]), c])
    assert [s.name for s in nested.sources] == ["a", "b", "c"]


def test_composite_wall_time_fixed_point():
    a = PeriodicNoise(100, 10, name="a")
    b = PeriodicNoise(333, 7, phase=13, name="b")
    c = CompositeNoise([a, b])
    for work in (0, 1, 50, 1234, 98_765):
        t = c.wall_time(5, work)
        assert t - c.stolen_between(5, 5 + t) == work


@given(p1=st.integers(50, 500), d1=st.integers(1, 20),
       p2=st.integers(50, 500), d2=st.integers(1, 20),
       ph2=st.integers(0, 500),
       start=st.integers(0, 10_000), work=st.integers(0, 5_000))
@settings(max_examples=100)
def test_property_composite_fixed_point(p1, d1, p2, d2, ph2, start, work):
    a = PeriodicNoise(p1, min(d1, p1 - 1), name="a")
    b = PeriodicNoise(p2, min(d2, p2 - 1), phase=ph2, name="b")
    if a.utilization + b.utilization >= 1:
        return
    c = CompositeNoise([a, b])
    t = c.wall_time(start, work)
    assert t >= work
    assert t - c.stolen_between(start, start + t) == work
