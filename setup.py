"""Setuptools shim.

The project is fully described by pyproject.toml; this file exists so
``pip install -e .`` also works on environments whose pip/setuptools
lack PEP-660 editable-wheel support (e.g. offline boxes without the
``wheel`` package).
"""

from setuptools import setup

setup()
